//! Partial distance profiles — VALMOD's per-row working state.
//!
//! After the base-length matrix profile is computed, VALMOD keeps, for each
//! subsequence (row), only the `p` candidates with the *largest base
//! correlation* — equivalently, by the rank-invariance of the lower bound
//! (see [`crate::lb`]), the `p` candidates with the smallest lower-bounded
//! distance at every extended length. Each kept entry carries its running
//! dot product, which one fused multiply-add per length keeps current.

/// One retained candidate of a partial distance profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialEntry {
    /// Candidate subsequence offset.
    pub j: u32,
    /// Pearson correlation with the row subsequence at the row's base
    /// length — the pruning key.
    pub rho_base: f64,
    /// Dot product between the two subsequences at the *current* length,
    /// updated incrementally as the length grows.
    pub qt: f64,
}

/// The partial distance profile of one subsequence.
#[derive(Debug, Clone, Default)]
pub struct PartialRow {
    /// Length at which this profile was (re)built; lower bounds extend
    /// from here.
    pub base_len: usize,
    /// Retained candidates, sorted by descending `rho_base`.
    pub entries: Vec<PartialEntry>,
    /// Whether the selection saw more admissible candidates than it could
    /// keep. When `false`, the profile is *complete*: no unstored
    /// candidate exists and the row is always valid.
    pub truncated: bool,
}

impl PartialRow {
    /// The smallest stored base correlation — the pruning threshold. Every
    /// candidate *not* stored has `ρ ≤` this, hence a lower-bounded
    /// distance `≥ bound(worst_rho)`.
    ///
    /// Returns `None` when the profile is not truncated (nothing was left
    /// out, so there is nothing to bound).
    #[must_use]
    pub fn worst_rho(&self) -> Option<f64> {
        if self.truncated {
            self.entries.last().map(|e| e.rho_base)
        } else {
            None
        }
    }

    /// Asserts the ordering invariant (descending `rho_base`).
    pub fn check_invariants(&self) {
        for w in self.entries.windows(2) {
            assert!(
                w[0].rho_base >= w[1].rho_base,
                "partial profile must be sorted by descending rho"
            );
        }
    }
}

/// Incremental top-`p` selector by correlation, used while streaming a
/// distance-profile row. Keeps the `p` largest-`rho` candidates seen.
#[derive(Debug)]
pub struct TopRhoSelector {
    capacity: usize,
    /// Unordered store; the minimum is tracked by index.
    slots: Vec<PartialEntry>,
    min_slot: usize,
    /// Count of admissible candidates offered (to detect truncation).
    offered: usize,
}

impl TopRhoSelector {
    /// A selector keeping at most `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), slots: Vec::new(), min_slot: 0, offered: 0 }
    }

    /// Offers a candidate. O(1) amortized; O(p) when the minimum must be
    /// rescanned after a replacement.
    pub fn offer(&mut self, j: usize, rho: f64, qt: f64) {
        self.offered += 1;
        #[allow(clippy::cast_possible_truncation)]
        let entry = PartialEntry { j: j as u32, rho_base: rho, qt };
        if self.slots.len() < self.capacity {
            self.slots.push(entry);
            if entry.rho_base < self.slots[self.min_slot].rho_base {
                self.min_slot = self.slots.len() - 1;
            }
            return;
        }
        if rho <= self.slots[self.min_slot].rho_base {
            return;
        }
        self.slots[self.min_slot] = entry;
        // Rescan for the new minimum (p is small).
        let mut min = 0;
        for (idx, e) in self.slots.iter().enumerate() {
            if e.rho_base < self.slots[min].rho_base {
                min = idx;
            }
        }
        self.min_slot = min;
    }

    /// Finalizes the selection into a [`PartialRow`] with the given base
    /// length.
    #[must_use]
    pub fn into_row(self, base_len: usize) -> PartialRow {
        let truncated = self.offered > self.slots.len();
        let mut entries = self.slots;
        entries.sort_by(|a, b| {
            b.rho_base.partial_cmp(&a.rho_base).expect("rho is never NaN").then(a.j.cmp(&b.j))
        });
        PartialRow { base_len, entries, truncated }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_keeps_the_top_p() {
        let mut sel = TopRhoSelector::new(3);
        for (j, rho) in [(0usize, 0.1), (1, 0.9), (2, 0.5), (3, 0.7), (4, 0.2), (5, 0.95)] {
            sel.offer(j, rho, rho * 10.0);
        }
        let row = sel.into_row(16);
        row.check_invariants();
        let js: Vec<u32> = row.entries.iter().map(|e| e.j).collect();
        assert_eq!(js, vec![5, 1, 3]);
        assert!(row.truncated);
        assert_eq!(row.worst_rho(), Some(0.7));
        assert_eq!(row.base_len, 16);
    }

    #[test]
    fn untruncated_profile_has_no_pruning_threshold() {
        let mut sel = TopRhoSelector::new(8);
        sel.offer(3, 0.4, 1.0);
        sel.offer(9, 0.6, 2.0);
        let row = sel.into_row(8);
        assert!(!row.truncated);
        assert_eq!(row.worst_rho(), None);
        assert_eq!(row.entries.len(), 2);
    }

    #[test]
    fn empty_selector_yields_empty_row() {
        let sel = TopRhoSelector::new(4);
        let row = sel.into_row(8);
        assert!(row.entries.is_empty());
        assert!(!row.truncated);
        assert_eq!(row.worst_rho(), None);
    }

    #[test]
    fn capacity_one_tracks_the_maximum() {
        let mut sel = TopRhoSelector::new(1);
        for (j, rho) in [(0usize, 0.3), (1, 0.8), (2, 0.5)] {
            sel.offer(j, rho, 0.0);
        }
        let row = sel.into_row(4);
        assert_eq!(row.entries.len(), 1);
        assert_eq!(row.entries[0].j, 1);
    }

    #[test]
    fn ties_are_resolved_deterministically() {
        let mut sel = TopRhoSelector::new(2);
        sel.offer(7, 0.5, 0.0);
        sel.offer(2, 0.5, 0.0);
        sel.offer(4, 0.5, 0.0);
        let row = sel.into_row(4);
        // Ordering by (rho desc, j asc) is stable regardless of offer order.
        assert!(row.entries.windows(2).all(|w| w[0].j < w[1].j));
    }
}
