//! The cross-kernel differential harness: every stage-1 kernel variant ×
//! lane override × thread count, over proptest-generated adversarial
//! series, asserting **byte-equal** merged selector state, bests, and
//! end-to-end checksums.
//!
//! Variants come from `testkit::test_levels()` — both portable widths
//! plus whichever packed backends (AVX2 4-lane, AVX-512 8-lane) the CPU
//! offers; on machines without AVX-512 the 8-lane slot is the portable
//! stand-in at the same width, so the width-dependent blocking is always
//! differenced even when the instruction encoding can't be. The scalar
//! cells are exercised through every ragged `first_diag`/tail shape the
//! generator produces, and the in-crate `kernel` tests additionally pin
//! all of this against the pre-kernel closure-based scalar walk.
//!
//! Adversarial shapes covered: planted motifs (selector churn), ±0.0
//! runs (sign-sensitive bit comparisons), overflow-scale values whose
//! dot products reach ±∞ and whose correlations go NaN (stage-1 only —
//! the NaN-clamp convention is the kernel's, see `kernel::clamp_rho`),
//! flat windows (kernel bypass, differenced end-to-end), and series
//! lengths leaving every remainder of diagonals per register tile.
//!
//! Case count respects `PROPTEST_CASES` (the nightly CI job raises it);
//! the default keeps the suite inside a tier-1 budget.

use proptest::prelude::*;
use valmod_core::testkit::{
    force_level, has_flat_windows, output_checksum, stage1_snapshot, test_levels,
};
use valmod_core::{run_valmod, ValmodConfig};
use valmod_series::gen;

/// Explicit `PROPTEST_CASES` support: the proptest macro's `with_cases`
/// overrides the env var, so read it ourselves to let nightly CI scale
/// this harness up without rebuilding.
fn cases(default_n: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default_n)
}

/// Deterministic adversarial series: a structured base (walk / ECG /
/// sines) with seed-driven mutations — a planted motif pair, a ±0.0 run,
/// and optionally overflow-scale spikes (`1e150`, whose ℓ-term dot
/// products overflow to ±∞ and whose correlations divide to NaN).
fn adversarial(kind: usize, n: usize, seed: u64, spikes: bool) -> Vec<f64> {
    let mut v = match kind % 3 {
        0 => gen::random_walk(n, seed),
        1 => gen::ecg(n, &gen::EcgConfig::default(), seed),
        _ => gen::sine_mix(n, &[(n as f64 / 7.0, 1.0), (n as f64 / 3.0, 0.4)], 0.05, seed),
    };
    // Plant an exact motif pair (identical windows far apart).
    let w = 8 + (seed as usize) % 9;
    if n > 4 * w {
        let (a, b) = (seed as usize % (n / 3), n / 2 + seed as usize % (n / 3 - w));
        let pat: Vec<f64> = v[a..a + w].to_vec();
        v[b..b + w].copy_from_slice(&pat);
    }
    // A ±0.0 run: sign-sensitive for the bitwise comparisons downstream.
    let z = (seed as usize).wrapping_mul(31) % n.saturating_sub(4);
    v[z] = 0.0;
    v[z + 1] = -0.0;
    v[z + 2] = -0.0;
    if spikes {
        // Overflow-scale spikes: windows containing them drive QT to ±∞
        // and ρ to NaN — the clamp convention must agree on every path.
        let s = (seed as usize).wrapping_mul(17) % n;
        v[s] = 1e150;
        v[(s + n / 3) % n] = -1e150;
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(12)))]

    /// Stage 1, differenced at the source: byte-equal merged selector
    /// state (kept entries, ρ and qt bits, truncation flags) and per-row
    /// bests across every lane variant × worker count, on adversarial
    /// series including NaN-correlation spikes and ragged tile tails.
    #[test]
    fn stage1_state_is_byte_equal_across_variants(
        kind in 0usize..3,
        n in 150usize..400,
        seed in 0u64..1_000_000,
        spikes_bit in 0u64..2,
    ) {
        let spikes = spikes_bit == 1;
        let series = adversarial(kind, n, seed, spikes);
        let l = 8 + (seed as usize) % 17;          // straddles tile columns
        if has_flat_windows(&series, l) {
            return Ok(());                          // covered end-to-end below
        }
        let m = series.len() - l + 1;
        // Sweep the ragged shapes: anywhere from "everything vectorized"
        // to "last blocks all scalar".
        let first_diag = 1 + (seed as usize / 31) % (m - 1).max(1);
        let profile_size = 1 + (seed as usize / 7) % 6;

        let levels = test_levels();
        let reference = stage1_snapshot(&series, l, first_diag, 1, profile_size, levels[0]);
        for level in levels {
            for workers in [1usize, 2, 8] {
                let got = stage1_snapshot(&series, l, first_diag, workers, profile_size, level);
                prop_assert!(
                    got == reference,
                    "stage-1 state diverged: level={level:?} workers={workers} \
                     l={l} first_diag={first_diag} n={n} kind={kind} spikes={spikes}"
                );
            }
        }
    }

    /// End to end, differenced at the outputs: the motif checksum of a
    /// full VALMOD run is invariant under every lane override × thread
    /// count — covering stage 2 (entry-dot advance, MASS re-seeding with
    /// the prefilter) and the flat-window kernel bypass, which the
    /// stage-1 snapshot cannot.
    #[test]
    fn end_to_end_checksum_is_lane_invariant(
        kind in 0usize..3,
        n in 200usize..400,
        seed in 0u64..1_000_000,
        flat_bit in 0u64..2,
    ) {
        let flat_patch = flat_bit == 1;
        let mut series = adversarial(kind, n, seed, false);
        if flat_patch {
            // A constant stretch: flat windows route stage 1 to the
            // scalar distance-space walk.
            let at = (seed as usize).wrapping_mul(13) % (n / 2);
            let len = 24 + (seed as usize) % 16;
            for x in &mut series[at..(at + len).min(n)] {
                *x = 3.25;
            }
        }
        let l_min = 12 + (seed as usize) % 5;
        let config = ValmodConfig::new(l_min, l_min + 4).with_k(3).with_profile_size(4);

        let levels = test_levels();
        let reference = {
            let _g = force_level(levels[0]);
            output_checksum(&run_valmod(&series, &config).expect("valid workload"))
        };
        for level in levels {
            for threads in [1usize, 2, 8] {
                let _g = force_level(level);
                let config = config.clone().with_threads(threads);
                let got = output_checksum(&run_valmod(&series, &config).expect("valid workload"));
                prop_assert!(
                    got == reference,
                    "checksum diverged: level={level:?} threads={threads} \
                     l_min={l_min} n={n} kind={kind} flat={flat_patch} \
                     ({got:#018x} vs {reference:#018x})"
                );
            }
        }
    }
}
