//! The observability counters must agree with the algorithm's own
//! output: the Prometheus dump is a *view* of the run, not a second
//! bookkeeping system that can drift.
//!
//! Single test function on purpose: the registry is process-global, so
//! this binary holds exactly one test and measures counter deltas
//! around exactly one `run_valmod` call.

use valmod_core::{run_valmod, ValmodConfig};
use valmod_obs as obs;
use valmod_series::gen;

struct KernelCounters {
    cells: u64,
    offers: u64,
    rejected: u64,
    dispatches: u64,
}

struct Stage2Counters {
    lengths: u64,
    valid: u64,
    invalid: u64,
    recomputed: u64,
    advances: u64,
}

fn kernel_counters() -> KernelCounters {
    let m = obs::metrics();
    KernelCounters {
        cells: m.stage1_cells.get(),
        offers: m.stage1_offers.get(),
        rejected: m.stage1_prefilter_rejected.get(),
        dispatches: m.stage1_dispatch_w8_packed.get()
            + m.stage1_dispatch_w4_packed.get()
            + m.stage1_dispatch_w8_portable.get()
            + m.stage1_dispatch_w4_portable.get(),
    }
}

fn stage2_counters() -> Stage2Counters {
    let m = obs::metrics();
    Stage2Counters {
        lengths: m.stage2_lengths.get(),
        valid: m.stage2_valid_rows.get(),
        invalid: m.stage2_invalid_rows.get(),
        recomputed: m.stage2_recomputed_rows.get(),
        advances: m.stage2_dot_advances.get(),
    }
}

/// Whether this build records metrics at all (the `obs-off` leg of CI
/// compiles every recording operation out; the view then has nothing to
/// be consistent *with*).
fn obs_enabled() -> bool {
    let probe = obs::metrics().journal_replayed.get();
    obs::metrics().journal_replayed.add(1);
    obs::metrics().journal_replayed.get() == probe + 1
}

#[test]
fn counters_match_the_runs_own_output() {
    if !obs_enabled() {
        return;
    }
    let series = gen::ecg(400, &gen::EcgConfig::default(), 17);
    let config = ValmodConfig::new(16, 28).with_k(3).with_threads(2);
    let k0 = kernel_counters();
    let s0 = stage2_counters();
    let output = run_valmod(&series, &config).unwrap();
    let k1 = kernel_counters();
    let s1 = stage2_counters();

    // Stage 1: every walked cell makes one row-side and one column-side
    // offer, minus the prefilter rejections flushed from the walk state.
    let cells = k1.cells - k0.cells;
    let offers = k1.offers - k0.offers;
    let rejected = k1.rejected - k0.rejected;
    assert!(cells > 0, "the walk visited no cells");
    assert_eq!(offers, 2 * cells - rejected, "offer accounting drifted");
    assert!(rejected <= 2 * cells);
    // The exact cell count: diagonal k of the l_min profile holds m-k
    // cells, walked once across all workers.
    let m = series.len() - config.l_min + 1;
    let first_diag = config.exclusion(config.l_min) + 1;
    let expect_cells: u64 = (first_diag..m).map(|k| (m - k) as u64).sum();
    assert_eq!(cells, expect_cells);
    // One dispatch count per worker walk, whatever the SIMD level. The
    // worker count is demand-clamped (a small series may not fill every
    // thread), so bound it rather than pin it.
    let dispatches = k1.dispatches - k0.dispatches;
    assert!((1..=2).contains(&dispatches), "dispatches {dispatches} outside 1..=threads");

    // Stage 2: the counters must equal the sums the output itself
    // reports (the paper's valid/non-valid pruning accounting).
    let steps: &[valmod_core::LengthResult] = &output.per_length[1..];
    assert_eq!(s1.lengths - s0.lengths, steps.len() as u64);
    let sum = |f: fn(&valmod_core::LengthStats) -> usize| -> u64 {
        steps.iter().map(|r| f(&r.stats) as u64).sum()
    };
    assert_eq!(s1.valid - s0.valid, sum(|s| s.valid_rows));
    assert_eq!(s1.invalid - s0.invalid, sum(|s| s.invalid_rows));
    assert_eq!(s1.recomputed - s0.recomputed, sum(|s| s.recomputed_rows));
    assert!(s1.advances > s0.advances, "no dot advances recorded");

    // Satellite: the per-length stage-2 timing breakdown covers exactly
    // the stepped lengths, in order.
    let stepped: Vec<usize> = output.timings.per_length.iter().map(|t| t.length).collect();
    let expect: Vec<usize> = steps.iter().map(|r| r.length).collect();
    assert_eq!(stepped, expect);

    // The Prometheus dump renders these exact totals — the CLI's
    // `--metrics -` output is this same string.
    let dump = obs::render_prometheus();
    for (name, value) in [
        ("valmod_stage1_cells_total", k1.cells),
        ("valmod_stage1_offers_total", k1.offers),
        ("valmod_stage1_prefilter_rejected_total", k1.rejected),
        ("valmod_stage2_valid_rows_total", s1.valid),
        ("valmod_stage2_invalid_rows_total", s1.invalid),
        ("valmod_stage2_recomputed_rows_total", s1.recomputed),
    ] {
        let line = format!("{name} {value}");
        assert!(dump.lines().any(|l| l == line), "missing `{line}` in dump");
    }
}
