//! Cross-engine checks of the parallel machinery: merged stage-1
//! selectors against a single-pass selector, and the degenerate-length
//! STOMP fallback across thread counts.

use valmod_core::partial::TopRhoSelector;
use valmod_core::{run_valmod, ValmodConfig};
use valmod_mp::stomp::{stomp, StompEngine};
use valmod_series::gen;
use valmod_series::stats::FLAT_EPS;

/// The merged selector's pruning threshold (`worst_rho`) must equal the
/// serial selector's on real engine data — this is what keeps `maxLB`
/// exact after the parallel stage-1 merge.
#[test]
fn merged_selector_worst_rho_equals_serial() {
    let series = gen::ecg(500, &gen::EcgConfig::default(), 17);
    let l = 24;
    let engine = StompEngine::new(&series, l).unwrap();
    let m = engine.num_windows();
    let (means, stds) = (engine.means().to_vec(), engine.stds().to_vec());
    let lf = l as f64;
    let excl = 7;
    let row = m / 2; // a representative row with candidates on both sides

    // All admissible (j, rho, qt) candidates of that row, via one serial
    // row stream.
    let mut candidates: Vec<(usize, f64, f64)> = Vec::new();
    engine.for_each_row(|i, qt| {
        if i != row {
            return;
        }
        for (j, &dot) in qt.iter().enumerate() {
            if i.abs_diff(j) <= excl {
                continue;
            }
            assert!(stds[i] >= FLAT_EPS && stds[j] >= FLAT_EPS, "ECG data has no flat windows");
            let rho =
                ((dot - lf * means[i] * means[j]) / (lf * stds[i] * stds[j])).clamp(-1.0, 1.0);
            candidates.push((j, rho, dot));
        }
    });
    assert!(candidates.len() > 32);

    for p in [1usize, 4, 8] {
        for workers in [2usize, 3, 8] {
            // Interleaved partitions, as the diagonal walk produces them.
            let mut parts: Vec<TopRhoSelector> =
                (0..workers).map(|_| TopRhoSelector::new(p)).collect();
            for (idx, &(j, rho, qt)) in candidates.iter().enumerate() {
                parts[idx % workers].offer(j, rho, qt);
            }
            let mut merged = parts.remove(0);
            for part in &parts {
                merged.absorb(part);
            }
            let serial_row = {
                let mut s = TopRhoSelector::new(p);
                for &(j, rho, qt) in &candidates {
                    s.offer(j, rho, qt);
                }
                s.into_row(l)
            };
            let merged_row = merged.into_row(l);
            assert_eq!(merged_row.worst_rho(), serial_row.worst_rho(), "p={p} w={workers}");
            assert_eq!(merged_row.entries, serial_row.entries, "p={p} w={workers}");
            assert_eq!(merged_row.truncated, serial_row.truncated);
        }
    }
}

/// A flat plateau forces the degenerate-length fallback at every extended
/// length; it now routes through diagonal-parallel STOMP, which must stay
/// byte-identical across thread counts and agree with serial STOMP.
#[test]
fn flat_plateau_fallback_is_thread_invariant() {
    let mut series = gen::white_noise(400, 5, 1.0);
    for v in &mut series[150..220] {
        *v = 1.5;
    }
    let config = ValmodConfig::new(8, 14).with_k(2).with_threads(1);
    let base = run_valmod(&series, &config).unwrap();
    assert!(
        base.per_length.iter().skip(1).all(|r| r.stats.stomp_fallback),
        "plateau must force the STOMP fallback at every extended length"
    );
    for threads in [2usize, 4, 8] {
        let out = run_valmod(&series, &config.clone().with_threads(threads)).unwrap();
        for (a, b) in out.per_length.iter().zip(&base.per_length) {
            assert_eq!(a.pairs.len(), b.pairs.len(), "length {}", a.length);
            for (pa, pb) in a.pairs.iter().zip(&b.pairs) {
                assert_eq!(
                    (pa.a, pa.b, pa.distance.to_bits()),
                    (pb.a, pb.b, pb.distance.to_bits()),
                    "fallback differs at length {} with {threads} threads",
                    a.length
                );
            }
        }
    }
    // And the fallback agrees with the serial reference engine.
    for r in base.per_length.iter().skip(1) {
        let mp = stomp(&series, r.length, config.exclusion(r.length)).unwrap();
        let reference = valmod_mp::motif::top_k_pairs(&mp, config.k);
        assert_eq!(r.pairs.len(), reference.len());
        for (got, want) in r.pairs.iter().zip(&reference) {
            assert!(
                (got.distance - want.distance).abs() < 1e-9,
                "length {}: {got:?} vs {want:?}",
                r.length
            );
        }
    }
}

/// End-to-end thread invariance on a workload that exercises the MASS
/// recomputation fallback hard (tiny profile size).
#[test]
fn recomputation_fallback_is_thread_invariant() {
    let series = gen::random_walk(600, 99);
    let config = ValmodConfig::new(12, 28).with_k(3).with_profile_size(1).with_threads(1);
    let base = run_valmod(&series, &config).unwrap();
    let recomputed: usize = base.per_length.iter().map(|r| r.stats.recomputed_rows).sum();
    assert!(recomputed > 0, "p=1 must trigger recomputation on a random walk");
    for threads in [2usize, 3, 8] {
        let out = run_valmod(&series, &config.clone().with_threads(threads)).unwrap();
        for (a, b) in out.per_length.iter().zip(&base.per_length) {
            assert_eq!(a.stats.recomputed_rows, b.stats.recomputed_rows, "length {}", a.length);
            for (pa, pb) in a.pairs.iter().zip(&b.pairs) {
                assert_eq!(
                    (pa.a, pa.b, pa.distance.to_bits()),
                    (pb.a, pb.b, pb.distance.to_bits()),
                    "length {} with {threads} threads",
                    a.length
                );
            }
        }
    }
}
