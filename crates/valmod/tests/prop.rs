//! Property tests for VALMOD's core invariants: lower-bound admissibility
//! and rank invariance on arbitrary inputs, and end-to-end exactness
//! against the brute force on random series.

use proptest::prelude::*;
use valmod_core::{run_valmod, LbRowContext, ValmodConfig};
use valmod_series::znorm::{pearson_from_dist, zdist};
use valmod_series::{gen, RollingStats};

fn series(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, min_len..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Admissibility: LB(i, j, L) ≤ d(T_{i,L}, T_{j,L}) for arbitrary
    /// series, rows, candidates, and extensions.
    #[test]
    fn lower_bound_is_admissible(values in series(40, 120), seed in 0usize..100_000) {
        let n = values.len();
        let base = 6 + seed % 10;
        let target = base + (seed / 10) % 12;
        if target >= n {
            return Ok(());
        }
        let i = (seed / 120) % (n - target + 1);
        let j = (seed / 7) % (n - target + 1);
        let stats = RollingStats::new(&values);
        let rho = pearson_from_dist(
            zdist(&values[i..i + base], &values[j..j + base]),
            base,
        );
        let ctx = LbRowContext::new(&stats, i, base, target);
        let lb = ctx.bound(rho);
        let true_d = zdist(&values[i..i + target], &values[j..j + target]);
        prop_assert!(
            lb <= true_d + 1e-5,
            "LB {} > true {} (i={}, j={}, base={}, target={})",
            lb, true_d, i, j, base, target
        );
    }

    /// Rank invariance: the bound is non-increasing in the base
    /// correlation for any row/extension.
    #[test]
    fn lower_bound_is_monotone(values in series(40, 100), seed in 0usize..10_000) {
        let n = values.len();
        let base = 6 + seed % 8;
        let target = base + seed % 16;
        if target >= n {
            return Ok(());
        }
        let i = seed % (n - target + 1);
        let stats = RollingStats::new(&values);
        let ctx = LbRowContext::new(&stats, i, base, target);
        let mut prev = f64::INFINITY;
        for step in 0..=40 {
            let rho = -1.0 + f64::from(step) * 0.05;
            let lb = ctx.bound(rho);
            prop_assert!(lb <= prev + 1e-12, "bound increased at rho {}", rho);
            prev = lb;
        }
    }

    /// End-to-end exactness on random series: VALMOD's best distance per
    /// length equals the matrix-profile minimum computed independently.
    #[test]
    fn valmod_is_exact_on_random_series(values in series(80, 160), seed in 0usize..1000) {
        let l_min = 6 + seed % 6;
        let width = 1 + seed % 6;
        let config = ValmodConfig::new(l_min, l_min + width).with_k(1).with_profile_size(2);
        if config.validate(values.len()).is_err() {
            return Ok(());
        }
        let out = run_valmod(&values, &config).unwrap();
        for r in &out.per_length {
            let mp = valmod_mp::stomp::stomp(&values, r.length, config.exclusion(r.length))
                .unwrap();
            match (r.pairs.first(), mp.min_entry()) {
                (Some(got), Some((_, _, want))) => prop_assert!(
                    (got.distance - want).abs() < 1e-6,
                    "length {}: {} vs {}", r.length, got.distance, want
                ),
                (None, None) => {}
                other => prop_assert!(false, "presence mismatch at {}: {:?}", r.length, other),
            }
        }
    }

    /// Thread-count invariance: the parallel engine's merges are
    /// partition-independent, so every thread count must produce
    /// *byte-identical* per-length distances, pair offsets, and VALMAP
    /// entries — not merely close ones.
    #[test]
    fn thread_count_never_changes_results(seed in 0u64..100_000, kind in 0usize..3) {
        let series = match kind {
            0 => gen::random_walk(700, seed),
            1 => gen::ecg(700, &gen::EcgConfig::default(), seed),
            _ => {
                let pattern: Vec<f64> = (0..32)
                    .map(|i| (i as f64 / 32.0 * std::f64::consts::TAU * 2.0).sin())
                    .collect();
                gen::planted_pair(700, &pattern, &[100, 460], 0.02, seed).0
            }
        };
        let config = ValmodConfig::new(20, 30).with_k(3).with_profile_size(4).with_threads(1);
        let base = run_valmod(&series, &config).unwrap();
        for threads in [2usize, 3, 8] {
            let out = run_valmod(&series, &config.clone().with_threads(threads)).unwrap();
            prop_assert_eq!(out.per_length.len(), base.per_length.len());
            for (a, b) in out.per_length.iter().zip(&base.per_length) {
                prop_assert_eq!(a.length, b.length);
                prop_assert_eq!(
                    a.pairs.len(), b.pairs.len(),
                    "pair count at length {} with {} threads", a.length, threads
                );
                for (pa, pb) in a.pairs.iter().zip(&b.pairs) {
                    prop_assert_eq!(
                        (pa.a, pa.b, pa.distance.to_bits()),
                        (pb.a, pb.b, pb.distance.to_bits()),
                        "pair differs at length {} with {} threads", a.length, threads
                    );
                }
            }
            // VALMAP entries must also match bit for bit.
            prop_assert_eq!(out.valmap.ip, base.valmap.ip.clone());
            prop_assert_eq!(out.valmap.lp, base.valmap.lp.clone());
            let mpn_bits: Vec<u64> = out.valmap.mpn.iter().map(|v| v.to_bits()).collect();
            let base_bits: Vec<u64> = base.valmap.mpn.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(mpn_bits, base_bits, "VALMAP mpn differs with {} threads", threads);
        }
    }

    /// Pipeline invariance: the stage-2 software pipeline (overlapped
    /// dot-advance on the worker pool) must be a pure scheduling change —
    /// pipeline on and off produce *byte-identical* pairs and VALMAP for
    /// every thread count. `profile_size` is drawn small so the MASS
    /// fallback (the pipeline's drain-and-sync path) fires in most cases,
    /// not just the happy path.
    #[test]
    fn stage2_pipeline_never_changes_results(
        seed in 0u64..100_000,
        kind in 0usize..3,
        p in 1usize..5,
    ) {
        let series = match kind {
            0 => gen::random_walk(700, seed),
            1 => gen::ecg(700, &gen::EcgConfig::default(), seed),
            _ => {
                let mut s = gen::white_noise(700, seed, 1.0);
                for v in &mut s[250..330] {
                    *v = 1.0; // plateau: the STOMP-fallback path drains too
                }
                s
            }
        };
        let config = ValmodConfig::new(18, 30).with_k(3).with_profile_size(p);
        let base = run_valmod(
            &series,
            &valmod_core::Query::from_config(config.clone())
                .threads(1)
                .pipeline(false)
                .into_config(),
        )
        .unwrap();
        for threads in [1usize, 2, 8] {
            for pipelined in [false, true] {
                let out = run_valmod(
                    &series,
                    &valmod_core::Query::from_config(config.clone())
                        .threads(threads)
                        .pipeline(pipelined)
                        .into_config(),
                )
                .unwrap();
                for (a, b) in out.per_length.iter().zip(&base.per_length) {
                    prop_assert_eq!(
                        a.pairs.len(), b.pairs.len(),
                        "pair count at length {} (threads={}, pipeline={})",
                        a.length, threads, pipelined
                    );
                    for (pa, pb) in a.pairs.iter().zip(&b.pairs) {
                        prop_assert_eq!(
                            (pa.a, pa.b, pa.distance.to_bits()),
                            (pb.a, pb.b, pb.distance.to_bits()),
                            "pair differs at length {} (threads={}, pipeline={})",
                            a.length, threads, pipelined
                        );
                    }
                    prop_assert_eq!(
                        (a.stats.valid_rows, a.stats.recomputed_rows, a.stats.stomp_fallback),
                        (b.stats.valid_rows, b.stats.recomputed_rows, b.stats.stomp_fallback),
                        "pruning stats differ at length {} (threads={}, pipeline={})",
                        a.length, threads, pipelined
                    );
                }
                let mpn_bits: Vec<u64> = out.valmap.mpn.iter().map(|v| v.to_bits()).collect();
                let base_bits: Vec<u64> = base.valmap.mpn.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(
                    mpn_bits, base_bits,
                    "VALMAP differs (threads={}, pipeline={})", threads, pipelined
                );
            }
        }
    }

    /// Discord thread-count invariance: stage 1 reuses the diagonal walk
    /// and the per-length loops chunk over rows, so every thread count
    /// must produce *byte-identical* discord offsets, distances, and
    /// resolve counts.
    #[test]
    fn discord_thread_count_never_changes_results(seed in 0u64..100_000, kind in 0usize..3) {
        let series = match kind {
            0 => gen::random_walk(500, seed),
            1 => gen::ecg(500, &gen::EcgConfig::default(), seed),
            _ => {
                let mut s = gen::white_noise(500, seed, 1.0);
                for v in &mut s[200..260] {
                    *v = 1.0; // plateau: exercise the flat fallback
                }
                s
            }
        };
        let config = ValmodConfig::new(16, 26).with_k(3).with_profile_size(4).with_threads(1);
        let base = valmod_core::variable_length_discords(&series, &config).unwrap();
        for threads in [2usize, 3, 8] {
            let out = valmod_core::variable_length_discords(
                &series,
                &config.clone().with_threads(threads),
            )
            .unwrap();
            prop_assert_eq!(out.len(), base.len());
            for (a, b) in out.iter().zip(&base) {
                prop_assert_eq!(a.length, b.length);
                prop_assert_eq!(
                    a.resolved_rows, b.resolved_rows,
                    "resolve count at length {} with {} threads", a.length, threads
                );
                prop_assert_eq!(a.discords.len(), b.discords.len());
                for (da, db) in a.discords.iter().zip(&b.discords) {
                    prop_assert_eq!(
                        (da.offset, da.nn_distance.to_bits()),
                        (db.offset, db.nn_distance.to_bits()),
                        "discord differs at length {} with {} threads", a.length, threads
                    );
                }
            }
        }
    }

    /// VALMAP structural invariants hold for arbitrary runs.
    #[test]
    fn valmap_structure_is_sound(values in series(80, 140), seed in 0usize..1000) {
        let l_min = 6 + seed % 5;
        let config = ValmodConfig::new(l_min, l_min + 4).with_k(2);
        if config.validate(values.len()).is_err() {
            return Ok(());
        }
        let out = run_valmod(&values, &config).unwrap();
        let v = &out.valmap;
        prop_assert_eq!(v.len(), values.len() - l_min + 1);
        prop_assert_eq!(v.checkpoints.len(), 4);
        for i in 0..v.len() {
            prop_assert!(!v.mpn[i].is_nan());
            prop_assert!(v.lp[i] >= l_min && v.lp[i] <= l_min + 4);
            if v.lp[i] > l_min {
                // An updated entry must appear in exactly the checkpoints
                // that touched it, the last one at its recorded length.
                let last = v
                    .checkpoints
                    .iter().rfind(|c| c.updates.iter().any(|u| u.offset == i));
                prop_assert_eq!(last.map(|c| c.length), Some(v.lp[i]));
            }
        }
        // Replaying the full log reproduces the live state.
        let (mpn, ip, lp) = v.as_of_length(usize::MAX).unwrap();
        prop_assert_eq!(&mpn, &v.mpn);
        prop_assert_eq!(&ip, &v.ip);
        prop_assert_eq!(&lp, &v.lp);
    }
}
