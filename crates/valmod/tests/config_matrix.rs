//! Exactness of VALMOD across a matrix of configurations: every
//! combination of exclusion policy, k, and p must match the brute force —
//! correctness must not depend on tuning.

use valmod_core::discord::variable_length_discords;
use valmod_core::{run_valmod, ValmodConfig};
use valmod_mp::motif::{top_k_discords, top_k_pairs};
use valmod_mp::stomp::stomp;
use valmod_series::gen;

fn check_motifs(series: &[f64], config: &ValmodConfig) {
    let out = run_valmod(series, config).unwrap();
    for r in &out.per_length {
        let mp = stomp(series, r.length, config.exclusion(r.length)).unwrap();
        let expect = top_k_pairs(&mp, config.k);
        assert_eq!(r.pairs.len(), expect.len(), "pair count at length {} for {config:?}", r.length);
        for (got, want) in r.pairs.iter().zip(&expect) {
            assert!(
                (got.distance - want.distance).abs() < 1e-6,
                "length {} for {config:?}: {got:?} vs {want:?}",
                r.length
            );
        }
    }
}

#[test]
fn exclusion_policy_matrix() {
    let series = gen::ecg(300, &gen::EcgConfig::default(), 91);
    for den in [2usize, 4, 8] {
        let mut config = ValmodConfig::new(16, 24).with_k(2);
        config.exclusion_den = den;
        check_motifs(&series, &config);
    }
}

#[test]
fn k_and_p_matrix() {
    let series = gen::astro(280, &gen::AstroConfig::default(), 92);
    for k in [1usize, 5] {
        for p in [1usize, 4, 16] {
            check_motifs(&series, &ValmodConfig::new(12, 20).with_k(k).with_profile_size(p));
        }
    }
}

#[test]
fn k_larger_than_available_pairs() {
    // Ask for far more pairs than spread-out candidates exist; VALMOD and
    // the reference must agree on the (short) result.
    let series = gen::random_walk(120, 93);
    check_motifs(&series, &ValmodConfig::new(10, 14).with_k(50));
}

#[test]
fn wide_range_against_brute() {
    // A range spanning 3x its l_min exercises long-extension bounds.
    let series = gen::ecg(260, &gen::EcgConfig::default(), 94);
    check_motifs(&series, &ValmodConfig::new(12, 36).with_k(2));
}

#[test]
fn discords_across_exclusion_policies() {
    let series = gen::seismic(260, &gen::SeismicConfig::default(), 95);
    for den in [2usize, 4] {
        let mut config = ValmodConfig::new(12, 18).with_k(2);
        config.exclusion_den = den;
        let results = variable_length_discords(&series, &config).unwrap();
        for r in &results {
            let mp = stomp(&series, r.length, config.exclusion(r.length)).unwrap();
            let expect = top_k_discords(&mp, config.k);
            assert_eq!(r.discords.len(), expect.len(), "at length {}", r.length);
            for (got, (_, want)) in r.discords.iter().zip(&expect) {
                assert!(
                    (got.nn_distance - want).abs() < 1e-6,
                    "length {} den {den}: {} vs {want}",
                    r.length,
                    got.nn_distance
                );
            }
        }
    }
}

#[test]
fn motifs_and_discords_share_one_run_semantics() {
    // The same config drives both searches; their per-length windows must
    // line up and their extreme entries must bracket every profile value.
    let series = gen::epg(300, &gen::EpgConfig::default(), 96);
    let config = ValmodConfig::new(16, 22).with_k(1);
    let motifs = run_valmod(&series, &config).unwrap();
    let discords = variable_length_discords(&series, &config).unwrap();
    for (m, d) in motifs.per_length.iter().zip(&discords) {
        assert_eq!(m.length, d.length);
        if let (Some(pair), Some(disc)) = (m.pairs.first(), d.discords.first()) {
            assert!(
                pair.distance <= disc.nn_distance + 1e-9,
                "motif distance must not exceed discord distance at length {}",
                m.length
            );
        }
    }
}
