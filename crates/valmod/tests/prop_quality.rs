//! Property tests for the quality tiers: the anytime tier settles to
//! the byte-identical exact output across seeded orders × SIMD lanes ×
//! worker counts, and the screen tier's lower bounds are admissible
//! against true z-normalized distances.

use proptest::prelude::*;
use valmod_core::testkit::{force_level, output_checksum, test_levels};
use valmod_core::{
    run_valmod, run_valmod_observed, screen_series, Quality, Query, ValmodConfig, ValmodOutput,
};
use valmod_series::gen;
use valmod_series::znorm::zdist;

fn test_series(kind: usize, n: usize, seed: u64) -> Vec<f64> {
    match kind {
        0 => gen::random_walk(n, seed),
        1 => gen::ecg(n, &gen::EcgConfig::default(), seed),
        2 => {
            let pattern: Vec<f64> =
                (0..32).map(|i| (i as f64 / 32.0 * std::f64::consts::TAU * 2.0).sin()).collect();
            gen::planted_pair(n, &pattern, &[n / 7, n / 2 + n / 5], 0.02, seed).0
        }
        _ => {
            let mut s = gen::white_noise(n, seed, 1.0);
            for v in &mut s[n / 3..n / 3 + 60] {
                *v = 1.0; // plateau: exercise the scalar flat-path walk
            }
            s
        }
    }
}

/// Byte-equality of two outputs: pairs, VALMAP, and the pair checksum.
fn assert_outputs_identical(a: &ValmodOutput, b: &ValmodOutput) -> Result<(), TestCaseError> {
    prop_assert_eq!(output_checksum(a), output_checksum(b), "pair checksum differs");
    prop_assert_eq!(a.per_length.len(), b.per_length.len());
    for (ra, rb) in a.per_length.iter().zip(&b.per_length) {
        prop_assert_eq!(ra.length, rb.length);
        prop_assert_eq!(ra.pairs.len(), rb.pairs.len(), "pair count at length {}", ra.length);
        for (pa, pb) in ra.pairs.iter().zip(&rb.pairs) {
            prop_assert_eq!(
                (pa.a, pa.b, pa.distance.to_bits()),
                (pb.a, pb.b, pb.distance.to_bits()),
                "pair differs at length {}",
                ra.length
            );
        }
    }
    prop_assert_eq!(&a.valmap.ip, &b.valmap.ip);
    prop_assert_eq!(&a.valmap.lp, &b.valmap.lp);
    let a_bits: Vec<u64> = a.valmap.mpn.iter().map(|v| v.to_bits()).collect();
    let b_bits: Vec<u64> = b.valmap.mpn.iter().map(|v| v.to_bits()).collect();
    prop_assert_eq!(a_bits, b_bits, "VALMAP mpn differs");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The anytime tier settles to the byte-identical exact result for
    /// every seed, budget, SIMD lane width, and worker count — and its
    /// preview stream is well-formed: monotone retired cells, a settled
    /// final preview whose VALMAP bit-equals the exact base VALMAP.
    #[test]
    fn anytime_settles_to_exact(
        seed in 0u64..100_000,
        order_seed in 0u64..100_000,
        budget in 1usize..7,
        kind in 0usize..4,
    ) {
        let series = test_series(kind, 700, seed);
        let config = ValmodConfig::new(18, 26).with_k(3).with_profile_size(4).with_threads(1);
        let exact = run_valmod(&series, &config).unwrap();
        // The settled preview is the VALMAP *at the base length* — the
        // state before any stage-2 length step touched it.
        let exact_base = valmod_core::Valmap::from_base_profile(&exact.base_profile);
        let exact_base_bits: Vec<u64> = exact_base.mpn.iter().map(|v| v.to_bits()).collect();

        for level in test_levels() {
            let _guard = force_level(level);
            for threads in [1usize, 3] {
                let anytime_config = Query::from_config(config.clone())
                    .threads(threads)
                    .quality(Quality::Anytime { budget })
                    .seed(order_seed)
                    .into_config();
                let mut previews: Vec<(usize, u64, u64, f64, Vec<u64>)> = Vec::new();
                let out = run_valmod_observed(&series, &anytime_config, &mut |p| {
                    previews.push((
                        p.round,
                        p.cells_retired,
                        p.cells_total,
                        p.churn,
                        p.valmap.mpn.iter().map(|v| v.to_bits()).collect(),
                    ));
                })
                .unwrap();
                assert_outputs_identical(&out, &exact)?;

                prop_assert!(!previews.is_empty());
                prop_assert!(previews.len() <= budget, "more rounds than the budget");
                let mut prev_retired = 0;
                for (i, p) in previews.iter().enumerate() {
                    prop_assert_eq!(p.0, i + 1, "round numbering");
                    prop_assert!(p.1 > prev_retired, "cells retired must grow");
                    prev_retired = p.1;
                }
                let last = previews.last().unwrap();
                prop_assert_eq!(last.1, last.2, "final preview must be settled");
                prop_assert_eq!(
                    &last.4, &exact_base_bits,
                    "settled preview VALMAP differs from the exact base \
                     (level {:?}, threads {}, seed {})",
                    level, threads, order_seed
                );
                prop_assert!((previews[0].3 - 1.0).abs() < 1e-12, "first churn is 1.0");
            }
        }
    }

    /// Screen-tier admissibility: every screened candidate's lower bound
    /// is ≤ the true z-normalized distance of that pair at that length,
    /// on random-walk / ECG / planted-motif series.
    #[test]
    fn screen_bounds_are_admissible(seed in 0u64..100_000, kind in 0usize..3) {
        let series = test_series(kind, 500, seed);
        let config = ValmodConfig::new(14, 24).with_k(3).with_profile_size(4);
        let report = screen_series(&series, &config).unwrap();
        prop_assert_eq!(report.lengths.len(), 10);
        for sl in &report.lengths {
            for c in &sl.candidates {
                let true_d = zdist(
                    &series[c.offset..c.offset + c.length],
                    &series[c.match_offset..c.match_offset + c.length],
                );
                prop_assert!(
                    c.lower_bound <= true_d + 1e-5,
                    "screen bound {} above true distance {} at length {} ({}, {})",
                    c.lower_bound, true_d, c.length, c.offset, c.match_offset
                );
            }
        }
    }
}
