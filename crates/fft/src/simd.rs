//! Width-generic `f64` SIMD lanes and the suite-wide dispatch state.
//!
//! Every vectorized hot path in the suite — the stage-1 diagonal walk and
//! the dot-advance kernels in `valmod-core`, the streaming shifts reusing
//! them, and the naive sliding dot in this crate — is written **once**
//! against the [`F64Lanes`] trait and instantiated at whatever lane width
//! the dispatch picks:
//!
//! | [`SimdLevel`]          | backend      | width | requires                  |
//! |------------------------|--------------|-------|---------------------------|
//! | [`SimdLevel::Avx512`]  | [`Avx512`]   | 8     | AVX-512 F/DQ/VL + AVX2+FMA|
//! | [`SimdLevel::Avx2`]    | [`Avx2`]     | 4     | AVX2 + FMA                |
//! | [`SimdLevel::Portable8`] | [`Portable`] | 8   | nothing (lane-exact stand-in) |
//! | [`SimdLevel::Portable4`] | [`Portable`] | 4   | nothing                   |
//!
//! The portable backend evaluates the *same expression tree* per lane in
//! scalar IEEE-754 arithmetic (`mul_add` where the packed op is a fused
//! multiply-add, x86 select semantics for min/max), so every instantiation
//! of a lane-generic kernel is byte-identical to every other — which is
//! what the `kernel_differential` harness in `valmod-core` pins across
//! widths, encodings, and thread counts.
//!
//! # Dispatch
//!
//! [`simd_level`] resolves, in priority order:
//!
//! 1. the `VALMOD_FORCE_PORTABLE` / `VALMOD_FORCE_WIDTH` environment knobs
//!    (each read **once per process** and cached — flipping them later has
//!    no effect, keeping the chosen paths consistent for the whole run);
//! 2. the in-process test override installed via [`override_simd`] (the
//!    environment always wins over the override, so a CI matrix entry
//!    exporting `VALMOD_FORCE_PORTABLE=1` pins the portable lanes even
//!    while a differential test flips widths);
//! 3. the CPU: the widest supported packed encoding, AVX-512 before AVX2
//!    before portable.
//!
//! Forcing a width the CPU cannot encode packed (e.g. `Width8` on an
//! AVX2-only machine) selects the portable stand-in at that width, so the
//! 8-lane *tiling structure* stays testable everywhere.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Lane-width-generic `f64` vector operations.
///
/// Implementors are zero-sized *capability tokens*: holding a value of a
/// packed backend type proves the required CPU features were verified at
/// runtime (their safe constructors check; the `unsafe` escape hatches
/// document the obligation), which is what makes the trait's methods safe
/// to call.
///
/// Semantics contract (what makes instantiations byte-identical):
///
/// * [`F64Lanes::mul_add`] is a *fused* multiply-add on every backend;
/// * [`F64Lanes::max`] is `if a > b { a } else { b }` per lane and
///   [`F64Lanes::min`] is `if a < b { a } else { b }` — the x86
///   `vmaxpd`/`vminpd` select convention, which lands NaN inputs on the
///   second operand instead of propagating;
/// * comparisons are IEEE quiet predicates (false on NaN);
/// * every other op is the exactly-rounded IEEE-754 double operation.
pub trait F64Lanes<const W: usize>: Copy {
    /// The vector of `W` lanes.
    type V: Copy;
    /// The per-lane comparison mask.
    type M: Copy;

    /// All lanes set to `x`.
    fn splat(self, x: f64) -> Self::V;
    /// Loads lanes from `src[..W]`.
    ///
    /// # Panics
    ///
    /// Panics if `src` holds fewer than `W` elements.
    fn load(self, src: &[f64]) -> Self::V;
    /// Stores lanes to `dst[..W]`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` holds fewer than `W` elements.
    fn store(self, v: Self::V, dst: &mut [f64]);
    /// The lanes as an array.
    fn to_array(self, v: Self::V) -> [f64; W];
    /// A vector from an array.
    fn pack(self, a: [f64; W]) -> Self::V;

    /// Lane-wise `a + b`.
    fn add(self, a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise `a - b`.
    fn sub(self, a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise `a * b`.
    fn mul(self, a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise `a / b`.
    fn div(self, a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise square root.
    fn sqrt(self, a: Self::V) -> Self::V;
    /// Lane-wise fused `a * b + c` (one rounding).
    fn mul_add(self, a: Self::V, b: Self::V, c: Self::V) -> Self::V;
    /// Lane-wise `if a > b { a } else { b }` (x86 `vmaxpd` semantics).
    fn max(self, a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise `if a < b { a } else { b }` (x86 `vminpd` semantics).
    fn min(self, a: Self::V, b: Self::V) -> Self::V;

    /// Lane-wise `a < b` (quiet: false on NaN).
    fn lt(self, a: Self::V, b: Self::V) -> Self::M;
    /// Lane-wise `a >= b` (quiet: false on NaN).
    fn ge(self, a: Self::V, b: Self::V) -> Self::M;
    /// Lane-wise `a == b` (quiet: false on NaN).
    fn eq(self, a: Self::V, b: Self::V) -> Self::M;
    /// Per lane: `if m { t } else { f }`.
    fn select(self, m: Self::M, t: Self::V, f: Self::V) -> Self::V;
    /// Lane-wise mask conjunction.
    fn mask_and(self, a: Self::M, b: Self::M) -> Self::M;
    /// Lane-wise mask disjunction.
    fn mask_or(self, a: Self::M, b: Self::M) -> Self::M;
    /// Bit `c` set iff lane `c` of the mask is set.
    fn mask_bits(self, m: Self::M) -> u32;

    /// Lanes shifted down one place with `x` inserted at the top:
    /// `[v[1], …, v[W−1], x]`.
    fn shift_in_high(self, v: Self::V, x: f64) -> Self::V;

    /// One-lane shift across a register pair viewed as `2W` lanes:
    /// `[lo[1], …, lo[W−1], hi[0]]` — the low half of `(lo, hi)` shifted
    /// down with the high half's bottom lane pulled in (exact bit move,
    /// like [`F64Lanes::shift_in_high`]).
    #[inline(always)]
    fn shift_concat(self, lo: Self::V, hi: Self::V) -> Self::V {
        self.shift_in_high(lo, self.extract0(hi))
    }

    /// Lane 0.
    #[inline(always)]
    fn extract0(self, v: Self::V) -> f64 {
        self.to_array(v)[0]
    }
    /// Horizontal fold under the [`F64Lanes::max`] select convention. The
    /// fold order is unspecified — for the non-NaN inputs the kernels
    /// feed it, every order produces the same value.
    #[inline(always)]
    fn hmax(self, v: Self::V) -> f64 {
        let a = self.to_array(v);
        let mut acc = a[0];
        for &x in &a[1..] {
            acc = if x > acc { x } else { acc };
        }
        acc
    }
    /// Horizontal fold under the [`F64Lanes::min`] select convention; same
    /// order caveat as [`F64Lanes::hmax`].
    #[inline(always)]
    fn hmin(self, v: Self::V) -> f64 {
        let a = self.to_array(v);
        let mut acc = a[0];
        for &x in &a[1..] {
            acc = if x < acc { x } else { acc };
        }
        acc
    }
}

/// The portable backend: plain `[f64; W]` arrays, scalar IEEE-754 ops per
/// lane — the lane-exact stand-in every packed backend is measured
/// against. Works at any width on any architecture.
#[derive(Clone, Copy, Debug, Default)]
pub struct Portable;

impl<const W: usize> F64Lanes<W> for Portable {
    type V = [f64; W];
    type M = [bool; W];

    #[inline(always)]
    fn splat(self, x: f64) -> Self::V {
        [x; W]
    }
    #[inline(always)]
    fn load(self, src: &[f64]) -> Self::V {
        let mut v = [0.0; W];
        v.copy_from_slice(&src[..W]);
        v
    }
    #[inline(always)]
    fn store(self, v: Self::V, dst: &mut [f64]) {
        dst[..W].copy_from_slice(&v);
    }
    #[inline(always)]
    fn to_array(self, v: Self::V) -> [f64; W] {
        v
    }
    #[inline(always)]
    fn pack(self, a: [f64; W]) -> Self::V {
        a
    }

    #[inline(always)]
    fn add(self, a: Self::V, b: Self::V) -> Self::V {
        std::array::from_fn(|c| a[c] + b[c])
    }
    #[inline(always)]
    fn sub(self, a: Self::V, b: Self::V) -> Self::V {
        std::array::from_fn(|c| a[c] - b[c])
    }
    #[inline(always)]
    fn mul(self, a: Self::V, b: Self::V) -> Self::V {
        std::array::from_fn(|c| a[c] * b[c])
    }
    #[inline(always)]
    fn div(self, a: Self::V, b: Self::V) -> Self::V {
        std::array::from_fn(|c| a[c] / b[c])
    }
    #[inline(always)]
    fn sqrt(self, a: Self::V) -> Self::V {
        std::array::from_fn(|c| a[c].sqrt())
    }
    #[inline(always)]
    fn mul_add(self, a: Self::V, b: Self::V, c: Self::V) -> Self::V {
        std::array::from_fn(|l| a[l].mul_add(b[l], c[l]))
    }
    #[inline(always)]
    fn max(self, a: Self::V, b: Self::V) -> Self::V {
        std::array::from_fn(|c| if a[c] > b[c] { a[c] } else { b[c] })
    }
    #[inline(always)]
    fn min(self, a: Self::V, b: Self::V) -> Self::V {
        std::array::from_fn(|c| if a[c] < b[c] { a[c] } else { b[c] })
    }

    #[inline(always)]
    fn lt(self, a: Self::V, b: Self::V) -> Self::M {
        std::array::from_fn(|c| a[c] < b[c])
    }
    #[inline(always)]
    fn ge(self, a: Self::V, b: Self::V) -> Self::M {
        std::array::from_fn(|c| a[c] >= b[c])
    }
    #[inline(always)]
    fn eq(self, a: Self::V, b: Self::V) -> Self::M {
        std::array::from_fn(|c| a[c] == b[c])
    }
    #[inline(always)]
    fn select(self, m: Self::M, t: Self::V, f: Self::V) -> Self::V {
        std::array::from_fn(|c| if m[c] { t[c] } else { f[c] })
    }
    #[inline(always)]
    fn mask_and(self, a: Self::M, b: Self::M) -> Self::M {
        std::array::from_fn(|c| a[c] && b[c])
    }
    #[inline(always)]
    fn mask_or(self, a: Self::M, b: Self::M) -> Self::M {
        std::array::from_fn(|c| a[c] || b[c])
    }
    #[inline(always)]
    fn mask_bits(self, m: Self::M) -> u32 {
        m.iter().enumerate().fold(0u32, |bits, (c, &lane)| bits | (u32::from(lane) << c))
    }

    #[inline(always)]
    fn shift_in_high(self, v: Self::V, x: f64) -> Self::V {
        std::array::from_fn(|c| if c + 1 < W { v[c + 1] } else { x })
    }
}

/// The AVX2+FMA backend: 4 lanes in one 256-bit register.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy, Debug)]
pub struct Avx2 {
    _token: (),
}

#[cfg(target_arch = "x86_64")]
impl Avx2 {
    /// The backend, if this CPU supports AVX2 and FMA.
    #[must_use]
    pub fn new() -> Option<Self> {
        (std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma"))
            .then_some(Self { _token: () })
    }

    /// The backend without a runtime check.
    ///
    /// # Safety
    ///
    /// The caller must have verified that the CPU supports AVX2 and FMA;
    /// holding the returned token is the proof every method relies on.
    #[must_use]
    pub unsafe fn new_unchecked() -> Self {
        Self { _token: () }
    }
}

// SAFETY of every method body below: the `Avx2` token is only
// constructible after AVX2+FMA detection (`new`) or under the caller
// obligation of `new_unchecked`, so the intrinsics are supported;
// loads/stores use unaligned ops on slices whose length is checked by the
// `[..W]` reslice.
#[cfg(target_arch = "x86_64")]
impl F64Lanes<4> for Avx2 {
    type V = core::arch::x86_64::__m256d;
    type M = core::arch::x86_64::__m256d;

    #[inline(always)]
    fn splat(self, x: f64) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm256_set1_pd(x) }
    }
    #[inline(always)]
    fn load(self, src: &[f64]) -> Self::V {
        let src = &src[..4];
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm256_loadu_pd(src.as_ptr()) }
    }
    #[inline(always)]
    fn store(self, v: Self::V, dst: &mut [f64]) {
        let dst = &mut dst[..4];
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm256_storeu_pd(dst.as_mut_ptr(), v) }
    }
    #[inline(always)]
    fn to_array(self, v: Self::V) -> [f64; 4] {
        let mut a = [0.0; 4];
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm256_storeu_pd(a.as_mut_ptr(), v) };
        a
    }
    #[inline(always)]
    fn pack(self, a: [f64; 4]) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm256_loadu_pd(a.as_ptr()) }
    }

    #[inline(always)]
    fn add(self, a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm256_add_pd(a, b) }
    }
    #[inline(always)]
    fn sub(self, a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm256_sub_pd(a, b) }
    }
    #[inline(always)]
    fn mul(self, a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm256_mul_pd(a, b) }
    }
    #[inline(always)]
    fn div(self, a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm256_div_pd(a, b) }
    }
    #[inline(always)]
    fn sqrt(self, a: Self::V) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm256_sqrt_pd(a) }
    }
    #[inline(always)]
    fn mul_add(self, a: Self::V, b: Self::V, c: Self::V) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm256_fmadd_pd(a, b, c) }
    }
    #[inline(always)]
    fn max(self, a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm256_max_pd(a, b) }
    }
    #[inline(always)]
    fn min(self, a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm256_min_pd(a, b) }
    }

    #[inline(always)]
    fn lt(self, a: Self::V, b: Self::V) -> Self::M {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm256_cmp_pd::<{ core::arch::x86_64::_CMP_LT_OQ }>(a, b) }
    }
    #[inline(always)]
    fn ge(self, a: Self::V, b: Self::V) -> Self::M {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm256_cmp_pd::<{ core::arch::x86_64::_CMP_GE_OQ }>(a, b) }
    }
    #[inline(always)]
    fn eq(self, a: Self::V, b: Self::V) -> Self::M {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm256_cmp_pd::<{ core::arch::x86_64::_CMP_EQ_OQ }>(a, b) }
    }
    #[inline(always)]
    fn select(self, m: Self::M, t: Self::V, f: Self::V) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm256_blendv_pd(f, t, m) }
    }
    #[inline(always)]
    fn mask_and(self, a: Self::M, b: Self::M) -> Self::M {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm256_and_pd(a, b) }
    }
    #[inline(always)]
    fn mask_or(self, a: Self::M, b: Self::M) -> Self::M {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm256_or_pd(a, b) }
    }
    #[inline(always)]
    fn mask_bits(self, m: Self::M) -> u32 {
        // SAFETY: see the impl-level comment.
        #[allow(clippy::cast_sign_loss)]
        unsafe {
            core::arch::x86_64::_mm256_movemask_pd(m) as u32
        }
    }

    #[inline(always)]
    fn shift_in_high(self, v: Self::V, x: f64) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe {
            // Lanes (1, 2, 3, ·) then insert `x` into the top lane.
            let rot = core::arch::x86_64::_mm256_permute4x64_pd::<0b11_11_10_01>(v);
            core::arch::x86_64::_mm256_blend_pd::<0b1000>(
                rot,
                core::arch::x86_64::_mm256_set1_pd(x),
            )
        }
    }

    #[inline(always)]
    fn shift_concat(self, lo: Self::V, hi: Self::V) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe {
            // Lanes (lo1, lo2, lo3, ·) then insert hi0 into the top lane.
            let rot = core::arch::x86_64::_mm256_permute4x64_pd::<0b11_11_10_01>(lo);
            let hi0 = core::arch::x86_64::_mm256_permute4x64_pd::<0b00_00_00_00>(hi);
            core::arch::x86_64::_mm256_blend_pd::<0b1000>(rot, hi0)
        }
    }

    #[inline(always)]
    fn extract0(self, v: Self::V) -> f64 {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm256_cvtsd_f64(v) }
    }

    // Tree reductions instead of the default store-and-scalar-chain fold:
    // a different fold order, which the trait contract allows (the value
    // is order-independent for the non-NaN inputs the kernels feed).
    #[inline(always)]
    fn hmax(self, v: Self::V) -> f64 {
        // SAFETY: see the impl-level comment.
        unsafe {
            use core::arch::x86_64::{
                _mm256_castpd256_pd128, _mm256_extractf128_pd, _mm_cvtsd_f64, _mm_max_pd,
                _mm_max_sd, _mm_unpackhi_pd,
            };
            let m = _mm_max_pd(_mm256_castpd256_pd128(v), _mm256_extractf128_pd::<1>(v));
            _mm_cvtsd_f64(_mm_max_sd(m, _mm_unpackhi_pd(m, m)))
        }
    }
    #[inline(always)]
    fn hmin(self, v: Self::V) -> f64 {
        // SAFETY: see the impl-level comment.
        unsafe {
            use core::arch::x86_64::{
                _mm256_castpd256_pd128, _mm256_extractf128_pd, _mm_cvtsd_f64, _mm_min_pd,
                _mm_min_sd, _mm_unpackhi_pd,
            };
            let m = _mm_min_pd(_mm256_castpd256_pd128(v), _mm256_extractf128_pd::<1>(v));
            _mm_cvtsd_f64(_mm_min_sd(m, _mm_unpackhi_pd(m, m)))
        }
    }
}

/// The AVX-512 backend: 8 lanes in one 512-bit register.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy, Debug)]
pub struct Avx512 {
    _token: (),
}

#[cfg(target_arch = "x86_64")]
impl Avx512 {
    /// The backend, if this CPU supports the required AVX-512 subsets
    /// (F/DQ/VL) plus AVX2+FMA for the 256-bit index arithmetic the
    /// gather kernels mix in.
    #[must_use]
    pub fn new() -> Option<Self> {
        (std::is_x86_feature_detected!("avx512f")
            && std::is_x86_feature_detected!("avx512dq")
            && std::is_x86_feature_detected!("avx512vl")
            && std::is_x86_feature_detected!("avx2")
            && std::is_x86_feature_detected!("fma"))
        .then_some(Self { _token: () })
    }

    /// The backend without a runtime check.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX-512 F/DQ/VL plus AVX2 and FMA;
    /// holding the returned token is the proof every method relies on.
    #[must_use]
    pub unsafe fn new_unchecked() -> Self {
        Self { _token: () }
    }
}

// SAFETY of every method body below: the `Avx512` token is only
// constructible after AVX-512 F/DQ/VL (+AVX2+FMA) detection (`new`) or
// under the caller obligation of `new_unchecked`; loads/stores use
// unaligned ops on slices whose length is checked by the `[..W]` reslice.
#[cfg(target_arch = "x86_64")]
impl F64Lanes<8> for Avx512 {
    type V = core::arch::x86_64::__m512d;
    type M = core::arch::x86_64::__mmask8;

    #[inline(always)]
    fn splat(self, x: f64) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm512_set1_pd(x) }
    }
    #[inline(always)]
    fn load(self, src: &[f64]) -> Self::V {
        let src = &src[..8];
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm512_loadu_pd(src.as_ptr()) }
    }
    #[inline(always)]
    fn store(self, v: Self::V, dst: &mut [f64]) {
        let dst = &mut dst[..8];
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm512_storeu_pd(dst.as_mut_ptr(), v) }
    }
    #[inline(always)]
    fn to_array(self, v: Self::V) -> [f64; 8] {
        let mut a = [0.0; 8];
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm512_storeu_pd(a.as_mut_ptr(), v) };
        a
    }
    #[inline(always)]
    fn pack(self, a: [f64; 8]) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm512_loadu_pd(a.as_ptr()) }
    }

    #[inline(always)]
    fn add(self, a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm512_add_pd(a, b) }
    }
    #[inline(always)]
    fn sub(self, a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm512_sub_pd(a, b) }
    }
    #[inline(always)]
    fn mul(self, a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm512_mul_pd(a, b) }
    }
    #[inline(always)]
    fn div(self, a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm512_div_pd(a, b) }
    }
    #[inline(always)]
    fn sqrt(self, a: Self::V) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm512_sqrt_pd(a) }
    }
    #[inline(always)]
    fn mul_add(self, a: Self::V, b: Self::V, c: Self::V) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm512_fmadd_pd(a, b, c) }
    }
    #[inline(always)]
    fn max(self, a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm512_max_pd(a, b) }
    }
    #[inline(always)]
    fn min(self, a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm512_min_pd(a, b) }
    }

    #[inline(always)]
    fn lt(self, a: Self::V, b: Self::V) -> Self::M {
        // SAFETY: see the impl-level comment.
        unsafe {
            core::arch::x86_64::_mm512_cmp_pd_mask::<{ core::arch::x86_64::_CMP_LT_OQ }>(a, b)
        }
    }
    #[inline(always)]
    fn ge(self, a: Self::V, b: Self::V) -> Self::M {
        // SAFETY: see the impl-level comment.
        unsafe {
            core::arch::x86_64::_mm512_cmp_pd_mask::<{ core::arch::x86_64::_CMP_GE_OQ }>(a, b)
        }
    }
    #[inline(always)]
    fn eq(self, a: Self::V, b: Self::V) -> Self::M {
        // SAFETY: see the impl-level comment.
        unsafe {
            core::arch::x86_64::_mm512_cmp_pd_mask::<{ core::arch::x86_64::_CMP_EQ_OQ }>(a, b)
        }
    }
    #[inline(always)]
    fn select(self, m: Self::M, t: Self::V, f: Self::V) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm512_mask_blend_pd(m, f, t) }
    }
    #[inline(always)]
    fn mask_and(self, a: Self::M, b: Self::M) -> Self::M {
        a & b
    }
    #[inline(always)]
    fn mask_or(self, a: Self::M, b: Self::M) -> Self::M {
        a | b
    }
    #[inline(always)]
    fn mask_bits(self, m: Self::M) -> u32 {
        u32::from(m)
    }

    #[inline(always)]
    fn shift_in_high(self, v: Self::V, x: f64) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe {
            use core::arch::x86_64::{
                _mm512_alignr_epi64, _mm512_castpd_si512, _mm512_castsi512_pd, _mm512_set1_pd,
            };
            // Concat(insert, v) >> 64 bits · 1: lanes (v1..v7, x).
            let ins = _mm512_castpd_si512(_mm512_set1_pd(x));
            _mm512_castsi512_pd(_mm512_alignr_epi64::<1>(ins, _mm512_castpd_si512(v)))
        }
    }

    #[inline(always)]
    fn shift_concat(self, lo: Self::V, hi: Self::V) -> Self::V {
        // SAFETY: see the impl-level comment.
        unsafe {
            use core::arch::x86_64::{
                _mm512_alignr_epi64, _mm512_castpd_si512, _mm512_castsi512_pd,
            };
            // Concat(hi, lo) >> one 64-bit lane: (lo1..lo7, hi0).
            _mm512_castsi512_pd(_mm512_alignr_epi64::<1>(
                _mm512_castpd_si512(hi),
                _mm512_castpd_si512(lo),
            ))
        }
    }

    #[inline(always)]
    fn extract0(self, v: Self::V) -> f64 {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm512_cvtsd_f64(v) }
    }

    // Tree reductions (see the AVX2 note): order-free by the trait
    // contract, one `vminpd`/`vmaxpd` cascade instead of a scalar chain.
    #[inline(always)]
    fn hmax(self, v: Self::V) -> f64 {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm512_reduce_max_pd(v) }
    }
    #[inline(always)]
    fn hmin(self, v: Self::V) -> f64 {
        // SAFETY: see the impl-level comment.
        unsafe { core::arch::x86_64::_mm512_reduce_min_pd(v) }
    }
}

/// A resolved dispatch decision: which backend, at which lane width, every
/// lane-generic kernel in the suite should instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable backend at 4 lanes.
    Portable4,
    /// Portable backend at 8 lanes — the lane-exact stand-in for AVX-512
    /// on machines (or matrix entries) without it.
    Portable8,
    /// AVX2+FMA packed backend, 4 lanes.
    Avx2,
    /// AVX-512 packed backend, 8 lanes.
    Avx512,
}

impl SimdLevel {
    /// The lane width of this level (4 or 8).
    #[must_use]
    pub fn width(self) -> usize {
        match self {
            Self::Portable4 | Self::Avx2 => 4,
            Self::Portable8 | Self::Avx512 => 8,
        }
    }

    /// Whether this level uses a packed (`core::arch`) encoding.
    #[must_use]
    pub fn packed(self) -> bool {
        matches!(self, Self::Avx2 | Self::Avx512)
    }
}

/// A forced lane width (the `VALMOD_FORCE_WIDTH` axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneWidth {
    /// 4 lanes (the AVX2-era width).
    W4,
    /// 8 lanes (the AVX-512 width).
    W8,
}

/// An in-process dispatch override — the injectable test knob.
///
/// Both axes compose with the environment, and the environment wins:
/// `VALMOD_FORCE_PORTABLE` forces `portable` regardless of the override,
/// and `VALMOD_FORCE_WIDTH` pins the width. Install via [`override_simd`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct SimdOverride {
    /// Force the portable backend (as `VALMOD_FORCE_PORTABLE` would).
    pub portable: bool,
    /// Force a lane width (as `VALMOD_FORCE_WIDTH` would).
    pub width: Option<LaneWidth>,
}

/// Encoded override state: 0 = none, else `1 + portable + (width << 1)`
/// with width 0 = unset, 1 = W4, 2 = W8.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Serializes override installation across tests in one process.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn decode_override(raw: u8) -> Option<SimdOverride> {
    if raw == 0 {
        return None;
    }
    let bits = raw - 1;
    Some(SimdOverride {
        portable: bits & 1 != 0,
        width: match bits >> 1 {
            1 => Some(LaneWidth::W4),
            2 => Some(LaneWidth::W8),
            _ => None,
        },
    })
}

fn encode_override(o: SimdOverride) -> u8 {
    let width = match o.width {
        None => 0u8,
        Some(LaneWidth::W4) => 1,
        Some(LaneWidth::W8) => 2,
    };
    1 + u8::from(o.portable) + (width << 1)
}

/// RAII guard of an installed [`SimdOverride`]; restores the previous
/// override state on drop. Holds a process-global lock so concurrent
/// tests cannot interleave their forced dispatch states.
pub struct SimdOverrideGuard {
    prev: u8,
    _lock: std::sync::MutexGuard<'static, ()>,
}

impl Drop for SimdOverrideGuard {
    fn drop(&mut self) {
        OVERRIDE.store(self.prev, Ordering::SeqCst);
    }
}

/// Installs an in-process dispatch override for the guard's lifetime.
///
/// This is the testability seam for the read-once environment knobs: the
/// differential harness flips lane widths and the portable backend
/// in-process, without subprocess spawns — while an actually-exported
/// `VALMOD_FORCE_PORTABLE`/`VALMOD_FORCE_WIDTH` still wins, so a CI
/// matrix entry keeps its meaning even while the harness runs under it.
#[must_use]
pub fn override_simd(o: SimdOverride) -> SimdOverrideGuard {
    let lock = OVERRIDE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let prev = OVERRIDE.swap(encode_override(o), Ordering::SeqCst);
    SimdOverrideGuard { prev, _lock: lock }
}

/// Whether the `VALMOD_FORCE_PORTABLE` environment knob demands the
/// portable lanes. Read **once per process** (first call) and cached;
/// flipping the variable afterwards has no effect — the in-process
/// alternative is [`override_simd`].
#[must_use]
pub fn env_force_portable() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("VALMOD_FORCE_PORTABLE").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
    })
}

/// The `VALMOD_FORCE_WIDTH` environment knob (`4` or `8`; anything else
/// is ignored). Read once per process and cached, like
/// [`env_force_portable`].
#[must_use]
pub fn env_force_width() -> Option<LaneWidth> {
    static FORCED: OnceLock<Option<LaneWidth>> = OnceLock::new();
    *FORCED.get_or_init(|| match std::env::var("VALMOD_FORCE_WIDTH").ok().as_deref() {
        Some("4") => Some(LaneWidth::W4),
        Some("8") => Some(LaneWidth::W8),
        _ => None,
    })
}

/// Whether the portable axis is currently forced — by the
/// `VALMOD_FORCE_PORTABLE` environment knob (read-once semantics) or by
/// an installed [`override_simd`] guard.
#[must_use]
pub fn portable_forced() -> bool {
    env_force_portable()
        || decode_override(OVERRIDE.load(Ordering::SeqCst)).unwrap_or_default().portable
}

/// Whether the AVX2+FMA backend is encodable on this CPU.
#[must_use]
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        Avx2::new().is_some()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the AVX-512 backend is encodable on this CPU.
#[must_use]
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        Avx512::new().is_some()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Resolves the dispatch decision every SIMD site in the suite follows:
/// environment knobs (cached at first read) over the in-process override
/// ([`override_simd`]) over CPU capability, widest packed encoding first.
/// A width forced beyond the CPU's packed capability selects the portable
/// stand-in at that width.
#[must_use]
pub fn simd_level() -> SimdLevel {
    let o = decode_override(OVERRIDE.load(Ordering::SeqCst)).unwrap_or_default();
    let portable = env_force_portable() || o.portable;
    let width = env_force_width().or(o.width);
    let width = width.unwrap_or(if avx512_available() { LaneWidth::W8 } else { LaneWidth::W4 });
    match (portable, width) {
        (true, LaneWidth::W4) => SimdLevel::Portable4,
        (true, LaneWidth::W8) => SimdLevel::Portable8,
        (false, LaneWidth::W4) => {
            if avx2_available() {
                SimdLevel::Avx2
            } else {
                SimdLevel::Portable4
            }
        }
        (false, LaneWidth::W8) => {
            if avx512_available() {
                SimdLevel::Avx512
            } else {
                SimdLevel::Portable8
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-exact op equivalence between every available packed backend and
    /// the portable one, adversarial lanes included (NaN, ±0.0, ±∞,
    /// overflow-scale magnitudes) — the micro-level statement of the
    /// suite-wide byte-identity contract.
    #[test]
    fn packed_backends_match_portable_ops_bitwise() {
        let a8 = [1.5, -0.0, f64::NAN, f64::INFINITY, -3.25, 1e170, -1e-300, 0.0];
        let b8 = [-2.5, 0.0, 1.0, f64::NEG_INFINITY, -3.25, 1e170, 7.0, -0.0];
        let c8 = [0.5, -1.0, 2.0, 1.0, 0.125, -1e170, 3.0, 9.75];

        fn check<const W: usize, B: F64Lanes<W>, P: F64Lanes<W>>(
            b: B,
            p: P,
            a: [f64; W],
            x: [f64; W],
            c: [f64; W],
        ) {
            let (va, vx, vc) = (b.pack(a), b.pack(x), b.pack(c));
            let (pa, px, pc) = (p.pack(a), p.pack(x), p.pack(c));
            let pairs: [([f64; W], [f64; W]); 8] = [
                (b.to_array(b.add(va, vx)), p.to_array(p.add(pa, px))),
                (b.to_array(b.sub(va, vx)), p.to_array(p.sub(pa, px))),
                (b.to_array(b.mul(va, vx)), p.to_array(p.mul(pa, px))),
                (b.to_array(b.div(va, vx)), p.to_array(p.div(pa, px))),
                (b.to_array(b.sqrt(va)), p.to_array(p.sqrt(pa))),
                (b.to_array(b.mul_add(va, vx, vc)), p.to_array(p.mul_add(pa, px, pc))),
                (b.to_array(b.max(va, vx)), p.to_array(p.max(pa, px))),
                (b.to_array(b.min(va, vx)), p.to_array(p.min(pa, px))),
            ];
            for (op, (got, want)) in pairs.iter().enumerate() {
                for l in 0..W {
                    assert_eq!(
                        got[l].to_bits(),
                        want[l].to_bits(),
                        "op {op} lane {l}: {} vs {}",
                        got[l],
                        want[l]
                    );
                }
            }
            assert_eq!(b.mask_bits(b.lt(va, vx)), p.mask_bits(p.lt(pa, px)), "lt mask");
            assert_eq!(b.mask_bits(b.ge(va, vx)), p.mask_bits(p.ge(pa, px)), "ge mask");
            assert_eq!(b.mask_bits(b.eq(va, vx)), p.mask_bits(p.eq(pa, px)), "eq mask");
            let (ma, mb) = (b.lt(va, vx), b.ge(va, vc));
            let (pma, pmb) = (p.lt(pa, px), p.ge(pa, pc));
            assert_eq!(b.mask_bits(b.mask_and(ma, mb)), p.mask_bits(p.mask_and(pma, pmb)), "and");
            assert_eq!(b.mask_bits(b.mask_or(ma, mb)), p.mask_bits(p.mask_or(pma, pmb)), "or");
            let m = b.lt(va, vx);
            let pm = p.lt(pa, px);
            let (sel, psel) = (b.to_array(b.select(m, va, vx)), p.to_array(p.select(pm, pa, px)));
            for l in 0..W {
                assert_eq!(sel[l].to_bits(), psel[l].to_bits(), "select lane {l}");
            }
            let (sh, psh) =
                (b.to_array(b.shift_in_high(va, 42.5)), p.to_array(p.shift_in_high(pa, 42.5)));
            for l in 0..W {
                assert_eq!(sh[l].to_bits(), psh[l].to_bits(), "shift lane {l}");
            }
            let (sc, psc) =
                (b.to_array(b.shift_concat(va, vx)), p.to_array(p.shift_concat(pa, px)));
            for l in 0..W {
                assert_eq!(sc[l].to_bits(), psc[l].to_bits(), "concat shift lane {l}");
            }
            assert_eq!(b.extract0(va).to_bits(), p.extract0(pa).to_bits(), "extract0");
            // hmax/hmin: NaN-free slice only — the fold order is
            // unspecified under NaN, and the kernels never feed one.
            let clean: [f64; W] = std::array::from_fn(|l| if a[l].is_nan() { 1.0 } else { a[l] });
            let (vclean, pclean) = (b.pack(clean), p.pack(clean));
            assert_eq!(b.hmax(vclean).to_bits(), p.hmax(pclean).to_bits(), "hmax");
            assert_eq!(b.hmin(vclean).to_bits(), p.hmin(pclean).to_bits(), "hmin");
        }

        #[cfg(target_arch = "x86_64")]
        {
            if let Some(avx2) = Avx2::new() {
                let take4 = |s: [f64; 8]| -> [f64; 4] { [s[0], s[1], s[2], s[3]] };
                check::<4, _, _>(avx2, Portable, take4(a8), take4(b8), take4(c8));
            }
            if let Some(avx512) = Avx512::new() {
                check::<8, _, _>(avx512, Portable, a8, b8, c8);
            }
        }
        // Portable against itself still sanity-checks the test harness on
        // machines without any packed backend.
        check::<4, _, _>(Portable, Portable, [1.0, 2.0, 3.0, 4.0], [4.0, 3.0, 2.0, 1.0], [0.0; 4]);
    }

    #[test]
    fn override_forces_levels_and_restores() {
        // Capture the environment-resolved default first (also caches the
        // env knobs, making the rest of the test deterministic).
        let auto = simd_level();
        {
            let _g = override_simd(SimdOverride { portable: true, width: Some(LaneWidth::W4) });
            // Unless the *environment* pins a different width, the
            // override must win.
            if env_force_width().is_none() && !env_force_portable() {
                assert_eq!(simd_level(), SimdLevel::Portable4);
            }
            if env_force_width().is_none() {
                assert!(!simd_level().packed(), "portable override ignored");
            }
        }
        assert_eq!(simd_level(), auto, "override guard failed to restore");
        {
            let _g = override_simd(SimdOverride { portable: true, width: Some(LaneWidth::W8) });
            if env_force_width().is_none() {
                assert_eq!(simd_level().width(), 8);
                assert!(!simd_level().packed());
            }
        }
        assert_eq!(simd_level(), auto);
    }

    #[test]
    fn forced_width_without_packed_support_falls_back_to_portable() {
        let _g = override_simd(SimdOverride { portable: false, width: Some(LaneWidth::W8) });
        if env_force_width().is_none() && env_force_portable() {
            // Forced-portable env entry: width override composes with it.
            assert_eq!(simd_level(), SimdLevel::Portable8);
        }
        if env_force_width().is_none() && !env_force_portable() && !avx512_available() {
            assert_eq!(
                simd_level(),
                SimdLevel::Portable8,
                "8-lane without AVX-512 must use the portable stand-in"
            );
        }
    }

    /// The read-once contract of the environment knobs: mutating the
    /// environment after the first read must not change the cached
    /// decision — that is exactly why [`override_simd`] exists.
    #[test]
    fn env_knobs_are_read_once_per_process() {
        let portable_before = env_force_portable();
        let width_before = env_force_width();
        let level_before = simd_level();
        std::env::set_var("VALMOD_FORCE_PORTABLE", "1");
        std::env::set_var("VALMOD_FORCE_WIDTH", "8");
        assert_eq!(env_force_portable(), portable_before, "env portable knob re-read");
        assert_eq!(env_force_width(), width_before, "env width knob re-read");
        assert_eq!(simd_level(), level_before, "dispatch re-read the environment");
        std::env::remove_var("VALMOD_FORCE_PORTABLE");
        std::env::remove_var("VALMOD_FORCE_WIDTH");
        assert_eq!(env_force_portable(), portable_before);
        assert_eq!(env_force_width(), width_before);
    }
}
