//! Minimal complex arithmetic for the FFT.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// Only the operations required by the FFT and convolution code are
/// implemented; this is not a general-purpose complex type.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    #[must_use]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^{iθ}` — the unit complex number at angle `theta` (radians).
    #[inline]
    #[must_use]
    pub fn cis(theta: f64) -> Self {
        Self { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    #[inline]
    #[must_use]
    pub const fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re.mul_add(self.re, self.im * self.im)
    }

    /// Magnitude (absolute value).
    #[inline]
    #[must_use]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplication by a real scalar.
    #[inline]
    #[must_use]
    pub fn scale(self, s: f64) -> Self {
        Self { re: self.re * s, im: self.im * s }
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self { re: -self.re, im: -self.im }
    }
}

#[cfg(test)]
mod tests {
    use super::Complex64;

    const EPS: f64 = 1e-12;

    #[test]
    fn construction_and_constants() {
        let z = Complex64::new(1.5, -2.5);
        assert_eq!(z.re, 1.5);
        assert_eq!(z.im, -2.5);
        assert_eq!(Complex64::ZERO, Complex64::new(0.0, 0.0));
        assert_eq!(Complex64::ONE, Complex64::from_real(1.0));
    }

    #[test]
    fn addition_and_subtraction() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -4.0);
        assert_eq!(a + b, Complex64::new(4.0, -2.0));
        assert_eq!(a - b, Complex64::new(-2.0, 6.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -4.0);
        // (1+2i)(3-4i) = 3 - 4i + 6i - 8i² = 11 + 2i
        let p = a * b;
        assert!((p.re - 11.0).abs() < EPS);
        assert!((p.im - 2.0).abs() < EPS);
    }

    #[test]
    fn i_squared_is_minus_one() {
        let i = Complex64::new(0.0, 1.0);
        let p = i * i;
        assert!((p.re + 1.0).abs() < EPS);
        assert!(p.im.abs() < EPS);
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = f64::from(k) * std::f64::consts::PI / 8.0;
            let z = Complex64::cis(theta);
            assert!((z.abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn conjugate_negates_imaginary() {
        let z = Complex64::new(2.0, 3.0);
        assert_eq!(z.conj(), Complex64::new(2.0, -3.0));
        // z * conj(z) is |z|² on the real axis.
        let p = z * z.conj();
        assert!((p.re - z.norm_sqr()).abs() < EPS);
        assert!(p.im.abs() < EPS);
    }

    #[test]
    fn scale_and_neg() {
        let z = Complex64::new(2.0, -3.0);
        assert_eq!(z.scale(0.5), Complex64::new(1.0, -1.5));
        assert_eq!(-z, Complex64::new(-2.0, 3.0));
    }
}
