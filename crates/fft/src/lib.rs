#![warn(missing_docs)]

//! Self-contained FFT substrate for the VALMOD suite.
//!
//! The MASS distance-profile algorithm (used by STAMP and by VALMOD's
//! recomputation fallback) needs sliding dot products of a query against a
//! long series, which are most efficiently computed as an FFT-based
//! convolution. This crate provides everything required, from scratch:
//!
//! * [`Complex64`] — minimal complex arithmetic,
//! * [`Fft`] — a planned, iterative radix-2 FFT (forward and inverse),
//! * [`RealFft`] — real-input transforms at half-size complex cost,
//! * [`convolve`] / [`convolve_naive`] — real linear convolution,
//! * [`sliding_dot_product`] — the MASS primitive: all dot products of a
//!   query with every window of a series.
//!
//! # Example
//!
//! ```
//! use valmod_fft::sliding_dot_product;
//!
//! let series = [1.0, 2.0, 3.0, 4.0, 5.0];
//! let query = [1.0, 1.0];
//! let qt = sliding_dot_product(&query, &series);
//! assert_eq!(qt.len(), 4);
//! assert!((qt[0] - 3.0).abs() < 1e-9); // 1*1 + 1*2
//! assert!((qt[3] - 9.0).abs() < 1e-9); // 1*4 + 1*5
//! ```

mod complex;
mod convolve;
mod fft;
mod real;
pub mod simd;
mod sliding;

pub use complex::Complex64;
pub use convolve::{convolve, convolve_naive};
pub use fft::Fft;
pub use real::RealFft;
pub use sliding::{
    naive_is_faster, sliding_dot_product, sliding_dot_product_naive,
    sliding_dot_product_naive_into, SlidingDotPlan, SlidingDotScratch,
};

/// Whether the portable (non-`core::arch`) code paths are currently
/// forced — by the `VALMOD_FORCE_PORTABLE` environment knob (read once
/// per process and cached; see [`simd::env_force_portable`]) or by an
/// in-process [`simd::override_simd`] guard.
///
/// Every SIMD dispatch site in the suite — the stage-1 diagonal kernel
/// and stage-2 dot-advance in `valmod-core`, and the vectorized naive
/// sliding dot here — routes through [`simd::simd_level`], which folds
/// this in before its CPU-feature check, so CI can exercise the portable
/// lanes on AVX2/AVX-512 runners (`VALMOD_FORCE_PORTABLE=1`) instead of
/// shipping them untested. The portable paths are byte-identical to the
/// packed ones by construction, so forcing them must never change
/// results — which is exactly what the forced rerun of the equality
/// suites pins.
#[must_use]
pub fn force_portable() -> bool {
    simd::portable_forced()
}

/// Smallest power of two greater than or equal to `n`.
///
/// Used to size FFT buffers for linear convolution.
///
/// # Panics
///
/// Panics if `n` exceeds `1 << 62` (far beyond any series this suite
/// processes).
#[must_use]
pub fn next_pow2(n: usize) -> usize {
    assert!(n <= (1usize << 62), "FFT size overflow: {n}");
    n.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::next_pow2;

    #[test]
    fn next_pow2_basics() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(4), 4);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(1023), 1024);
        assert_eq!(next_pow2(1024), 1024);
        assert_eq!(next_pow2(1025), 2048);
    }
}
