//! Real linear convolution, naive and FFT-based.

use crate::{next_pow2, Complex64, Fft};

/// Threshold below which the naive algorithm beats the FFT path.
///
/// Chosen conservatively; the `ablation_primitives` bench in
/// `valmod-bench` measures the actual crossover on the host machine.
const NAIVE_CUTOFF: usize = 1 << 12;

/// Direct O(n·m) linear convolution of two real signals.
///
/// The result has length `a.len() + b.len() - 1` (empty if either input is
/// empty).
#[must_use]
pub fn convolve_naive(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// Linear convolution of two real signals.
///
/// Uses the naive algorithm when the product of input lengths is small and
/// an FFT of the next power of two otherwise, so the cost is
/// O((n+m) log(n+m)) for long inputs.
#[must_use]
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    if a.len().saturating_mul(b.len()) <= NAIVE_CUTOFF {
        return convolve_naive(a, b);
    }

    let size = next_pow2(out_len);
    let fft = Fft::new(size);

    // Pack both real signals into one complex buffer (a in the real part,
    // b in the imaginary part) and untangle the spectra, halving FFT work.
    let mut packed = vec![Complex64::ZERO; size];
    for (p, &x) in packed.iter_mut().zip(a) {
        p.re = x;
    }
    for (p, &y) in packed.iter_mut().zip(b) {
        p.im = y;
    }
    fft.forward(&mut packed);

    // Spectrum of a: (P[k] + conj(P[N-k]))/2; spectrum of b: (P[k] - conj(P[N-k]))/(2i).
    // Their product is the spectrum of the convolution.
    let mut spec = vec![Complex64::ZERO; size];
    for k in 0..size {
        let pk = packed[k];
        let pnk = packed[(size - k) % size].conj();
        let fa = (pk + pnk).scale(0.5);
        // i * F{b}
        let fb_times_i = (pk - pnk).scale(0.5);
        // fa * fb = fa * (fb_times_i / i) = -i * fa * fb_times_i
        let prod = fa * fb_times_i;
        spec[k] = Complex64::new(prod.im, -prod.re);
    }
    fft.inverse(&mut spec);

    spec.truncate(out_len);
    spec.into_iter().map(|z| z.re).collect()
}

#[cfg(test)]
mod tests {
    use super::{convolve, convolve_naive};

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "mismatch at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn empty_inputs_give_empty_output() {
        assert!(convolve(&[], &[1.0]).is_empty());
        assert!(convolve(&[1.0], &[]).is_empty());
        assert!(convolve_naive(&[], &[]).is_empty());
    }

    #[test]
    fn single_elements_multiply() {
        assert_close(&convolve(&[3.0], &[4.0]), &[12.0], 1e-12);
    }

    #[test]
    fn known_small_convolution() {
        // (1 + 2x)(3 + 4x) = 3 + 10x + 8x²
        assert_close(&convolve(&[1.0, 2.0], &[3.0, 4.0]), &[3.0, 10.0, 8.0], 1e-12);
    }

    #[test]
    fn delta_is_identity() {
        let sig = [1.5, -2.0, 0.0, 3.25, 4.0];
        assert_close(&convolve(&[1.0], &sig), &sig, 1e-12);
    }

    #[test]
    fn fft_path_matches_naive() {
        // Force the FFT path with inputs whose length product exceeds the cutoff.
        let a: Vec<f64> = (0..300).map(|i| ((i * 37) % 17) as f64 - 8.0).collect();
        let b: Vec<f64> = (0..200).map(|i| ((i * 91) % 23) as f64 * 0.25).collect();
        assert!(a.len() * b.len() > super::NAIVE_CUTOFF);
        let fast = convolve(&a, &b);
        let slow = convolve_naive(&a, &b);
        assert_close(&fast, &slow, 1e-6);
    }

    #[test]
    fn convolution_is_commutative() {
        let a: Vec<f64> = (0..150).map(|i| (i as f64 * 0.1).sin()).collect();
        let b: Vec<f64> = (0..90).map(|i| (i as f64 * 0.05).cos()).collect();
        assert_close(&convolve(&a, &b), &convolve(&b, &a), 1e-8);
    }
}
