//! Real-input FFT: a length-`N` transform of real data at the cost of one
//! length-`N/2` complex transform.
//!
//! The classic packing trick: interleave the even- and odd-indexed samples
//! into a half-size complex signal `z[k] = x[2k] + i·x[2k+1]`, transform it
//! once, and *untangle* the result into the spectrum of `x` using the
//! Hermitian symmetry of real-input DFTs. Since `X[N−k] = conj(X[k])`, the
//! full spectrum is represented by its first `N/2 + 1` bins.
//!
//! The inverse runs the same algebra backwards: re-tangle the half
//! spectrum, one half-size inverse transform, de-interleave. Both
//! directions write into caller-provided buffers, so repeated transforms
//! (the sliding-dot-product hot path) allocate nothing.

use crate::{Complex64, Fft};

/// A reusable plan for forward/inverse DFTs of real signals of a fixed
/// power-of-two length.
///
/// # Example
///
/// ```
/// use valmod_fft::RealFft;
///
/// let rfft = RealFft::new(8);
/// let input = [1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0];
/// let mut packed = rfft.packed_buffer();
/// let mut spectrum = rfft.spectrum_buffer();
/// rfft.forward(&input, &mut packed, &mut spectrum);
/// // Bin 0 is the plain sum of the signal.
/// assert!((spectrum[0].re - 10.0).abs() < 1e-12);
/// let mut back = [0.0f64; 8];
/// rfft.inverse(&spectrum, &mut packed, &mut back);
/// for (a, b) in back.iter().zip(&input) {
///     assert!((a - b).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RealFft {
    size: usize,
    /// Complex plan of size `N/2` operating on the packed signal.
    half: Fft,
    /// `e^{-2πik/N}` for `k in 0..=N/2` — the untangling twiddles.
    twiddles: Vec<Complex64>,
}

impl RealFft {
    /// Builds a plan for real transforms of length `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two or is smaller than 2.
    #[must_use]
    pub fn new(size: usize) -> Self {
        assert!(size.is_power_of_two() && size >= 2, "RealFft size must be a power of two >= 2");
        let half = Fft::new(size / 2);
        let step = -2.0 * std::f64::consts::PI / size as f64;
        let twiddles = (0..=size / 2).map(|k| Complex64::cis(step * k as f64)).collect();
        Self { size, half, twiddles }
    }

    /// The real transform length `N` this plan was built for.
    #[inline]
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of spectrum bins, `N/2 + 1` (the rest follow by Hermitian
    /// symmetry).
    #[inline]
    #[must_use]
    pub fn spectrum_len(&self) -> usize {
        self.size / 2 + 1
    }

    /// A correctly sized scratch buffer for the packed half-size signal.
    #[must_use]
    pub fn packed_buffer(&self) -> Vec<Complex64> {
        vec![Complex64::ZERO; self.size / 2]
    }

    /// A correctly sized spectrum buffer.
    #[must_use]
    pub fn spectrum_buffer(&self) -> Vec<Complex64> {
        vec![Complex64::ZERO; self.spectrum_len()]
    }

    /// Forward DFT of `input` (zero-padded to `N` when shorter) into
    /// `spectrum[0..=N/2]`, using `packed` as scratch.
    ///
    /// # Panics
    ///
    /// Panics when `input` is longer than the plan, or the buffers have
    /// the wrong size (`packed`: `N/2`, `spectrum`: `N/2 + 1`).
    pub fn forward(&self, input: &[f64], packed: &mut [Complex64], spectrum: &mut [Complex64]) {
        let n = self.size;
        let h = n / 2;
        assert!(input.len() <= n, "input length {} exceeds plan size {n}", input.len());
        assert_eq!(packed.len(), h, "packed buffer must have length N/2");
        assert_eq!(spectrum.len(), h + 1, "spectrum buffer must have length N/2 + 1");

        // Pack: z[k] = x[2k] + i·x[2k+1], zero-padded.
        for (p, pair) in packed.iter_mut().zip(input.chunks(2)) {
            *p = Complex64::new(pair[0], pair.get(1).copied().unwrap_or(0.0));
        }
        for p in packed.iter_mut().skip(input.len().div_ceil(2)) {
            *p = Complex64::ZERO;
        }
        self.half.forward(packed);

        // Untangle: X[k] = (Z[k] + conj(Z[H−k]))/2 − (i/2)·W^k·(Z[k] − conj(Z[H−k])).
        for (k, (out, &w)) in spectrum.iter_mut().zip(&self.twiddles).enumerate() {
            let zk = packed[k % h];
            let zmk = packed[(h - k) % h].conj();
            let a = (zk + zmk).scale(0.5);
            let b = (zk - zmk) * Complex64::new(0.0, -0.5);
            *out = a + w * b;
        }
    }

    /// Inverse DFT of a Hermitian half `spectrum` into the real `output`
    /// (length `N`), using `packed` as scratch.
    ///
    /// Includes the `1/N` scaling, so `inverse(forward(x)) == x` up to
    /// floating-point error.
    ///
    /// # Panics
    ///
    /// Panics on wrongly sized buffers (`spectrum`: `N/2 + 1`, `packed`:
    /// `N/2`, `output`: `N`).
    pub fn inverse(&self, spectrum: &[Complex64], packed: &mut [Complex64], output: &mut [f64]) {
        let n = self.size;
        let h = n / 2;
        assert_eq!(spectrum.len(), h + 1, "spectrum buffer must have length N/2 + 1");
        assert_eq!(packed.len(), h, "packed buffer must have length N/2");
        assert_eq!(output.len(), n, "output buffer must have length N");

        // Re-tangle: Z[k] = (X[k] + conj(X[H−k]))/2 + (i/2)·conj(W^k)·(X[k] − conj(X[H−k])).
        for (k, p) in packed.iter_mut().enumerate() {
            let xk = spectrum[k];
            let xmk = spectrum[h - k].conj();
            let a = (xk + xmk).scale(0.5);
            let d = (xk - xmk).scale(0.5);
            *p = a + Complex64::new(0.0, 1.0) * self.twiddles[k].conj() * d;
        }
        self.half.inverse(packed);

        // Unpack: x[2k] = Re z[k], x[2k+1] = Im z[k].
        for (pair, z) in output.chunks_mut(2).zip(packed.iter()) {
            pair[0] = z.re;
            pair[1] = z.im;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::RealFft;
    use crate::{Complex64, Fft};

    fn pseudo(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 2654435761) % 997) as f64 / 99.0 - 5.0).collect()
    }

    /// Reference: full complex FFT of the real input.
    fn complex_spectrum(input: &[f64], size: usize) -> Vec<Complex64> {
        let mut buf = vec![Complex64::ZERO; size];
        for (b, &x) in buf.iter_mut().zip(input) {
            b.re = x;
        }
        Fft::new(size).forward(&mut buf);
        buf
    }

    #[test]
    fn forward_matches_complex_fft() {
        for &n in &[2usize, 4, 8, 64, 256, 1024] {
            let input = pseudo(n);
            let rfft = RealFft::new(n);
            let mut packed = rfft.packed_buffer();
            let mut spectrum = rfft.spectrum_buffer();
            rfft.forward(&input, &mut packed, &mut spectrum);
            let reference = complex_spectrum(&input, n);
            for (k, (got, want)) in spectrum.iter().zip(&reference).enumerate() {
                assert!(
                    (got.re - want.re).abs() < 1e-8 && (got.im - want.im).abs() < 1e-8,
                    "size {n} bin {k}: {got:?} vs {want:?}"
                );
            }
        }
    }

    #[test]
    fn forward_zero_pads_short_input() {
        let n = 32;
        let short = pseudo(13); // odd length: exercises the half-filled pair
        let mut padded = short.clone();
        padded.resize(n, 0.0);
        let rfft = RealFft::new(n);
        let mut packed = rfft.packed_buffer();
        let mut a = rfft.spectrum_buffer();
        rfft.forward(&short, &mut packed, &mut a);
        let mut b = rfft.spectrum_buffer();
        rfft.forward(&padded, &mut packed, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.re - y.re).abs() < 1e-12 && (x.im - y.im).abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_recovers_input() {
        for &n in &[2usize, 8, 128, 4096] {
            let input = pseudo(n);
            let rfft = RealFft::new(n);
            let mut packed = rfft.packed_buffer();
            let mut spectrum = rfft.spectrum_buffer();
            rfft.forward(&input, &mut packed, &mut spectrum);
            let mut back = vec![0.0; n];
            rfft.inverse(&spectrum, &mut packed, &mut back);
            for (i, (a, b)) in back.iter().zip(&input).enumerate() {
                assert!((a - b).abs() < 1e-9, "size {n} sample {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn edge_bins_are_real() {
        // X[0] and X[N/2] of a real signal are real-valued.
        let n = 64;
        let input = pseudo(n);
        let rfft = RealFft::new(n);
        let mut packed = rfft.packed_buffer();
        let mut spectrum = rfft.spectrum_buffer();
        rfft.forward(&input, &mut packed, &mut spectrum);
        assert!(spectrum[0].im.abs() < 1e-9);
        assert!(spectrum[n / 2].im.abs() < 1e-9);
        let sum: f64 = input.iter().sum();
        assert!((spectrum[0].re - sum).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = RealFft::new(6);
    }

    #[test]
    #[should_panic(expected = "exceeds plan size")]
    fn rejects_oversized_input() {
        let rfft = RealFft::new(4);
        let mut packed = rfft.packed_buffer();
        let mut spectrum = rfft.spectrum_buffer();
        rfft.forward(&[0.0; 5], &mut packed, &mut spectrum);
    }
}
