//! Sliding dot products — the core primitive of the MASS algorithm.
//!
//! Given a query `q` of length `m` and a series `t` of length `n ≥ m`, the
//! sliding dot product is the vector `QT` with
//! `QT[i] = Σ_{k<m} q[k]·t[i+k]` for `i in 0..=n-m`. Computing it as a
//! convolution with the reversed query costs O(n log n) instead of O(n·m).

use crate::{next_pow2, Complex64, Fft};

/// Direct O(n·m) sliding dot product, used as a reference and for short
/// queries where it beats the FFT path.
///
/// Returns an empty vector when the query is empty or longer than the series.
#[must_use]
pub fn sliding_dot_product_naive(query: &[f64], series: &[f64]) -> Vec<f64> {
    let m = query.len();
    let n = series.len();
    if m == 0 || m > n {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(n - m + 1);
    for i in 0..=n - m {
        let window = &series[i..i + m];
        let mut acc = 0.0;
        for (q, w) in query.iter().zip(window) {
            acc = q.mul_add(*w, acc);
        }
        out.push(acc);
    }
    out
}

/// Sliding dot product of `query` against every window of `series`.
///
/// Picks the naive or the FFT algorithm based on input sizes. For repeated
/// queries against the same series, prefer [`SlidingDotPlan`], which reuses
/// the series spectrum.
#[must_use]
pub fn sliding_dot_product(query: &[f64], series: &[f64]) -> Vec<f64> {
    let m = query.len();
    let n = series.len();
    if m == 0 || m > n {
        return Vec::new();
    }
    // Rough cost model: naive is m ops per output; FFT path ~ 3 log2(2n).
    if (m as u64).saturating_mul(n as u64) <= 1 << 14 || m <= 32 {
        return sliding_dot_product_naive(query, series);
    }
    SlidingDotPlan::new(series).dot(query)
}

/// A reusable plan holding the FFT of a series, so that many queries (as in
/// STAMP, or VALMOD's per-row recomputation) each cost one forward and one
/// inverse transform instead of two forward ones.
#[derive(Debug, Clone)]
pub struct SlidingDotPlan {
    fft: Fft,
    /// Forward spectrum of the (zero-padded) series.
    series_spectrum: Vec<Complex64>,
    series_len: usize,
}

impl SlidingDotPlan {
    /// Builds a plan for the given series.
    ///
    /// The FFT size is the next power of two of `2 * series.len()`, large
    /// enough for any query length up to the series length.
    #[must_use]
    pub fn new(series: &[f64]) -> Self {
        let n = series.len();
        let size = next_pow2((2 * n).max(1));
        let fft = Fft::new(size);
        let mut buf = vec![Complex64::ZERO; size];
        for (b, &x) in buf.iter_mut().zip(series) {
            b.re = x;
        }
        fft.forward(&mut buf);
        Self { fft, series_spectrum: buf, series_len: n }
    }

    /// Length of the series this plan was built for.
    #[inline]
    #[must_use]
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Sliding dot product of `query` against the planned series.
    ///
    /// Returns an empty vector when the query is empty or longer than the
    /// series.
    #[must_use]
    pub fn dot(&self, query: &[f64]) -> Vec<f64> {
        let m = query.len();
        let n = self.series_len;
        if m == 0 || m > n {
            return Vec::new();
        }
        let size = self.fft.size();
        let mut buf = vec![Complex64::ZERO; size];
        // Reversed query, so the convolution aligns dot products at i+m-1.
        for (b, &q) in buf.iter_mut().zip(query.iter().rev()) {
            b.re = q;
        }
        self.fft.forward(&mut buf);
        for (b, s) in buf.iter_mut().zip(&self.series_spectrum) {
            *b *= *s;
        }
        self.fft.inverse(&mut buf);
        (m - 1..n).map(|i| buf[i].re).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::{sliding_dot_product, sliding_dot_product_naive, SlidingDotPlan};

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "mismatch at {i}: {x} vs {y}");
        }
    }

    fn pseudo_series(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 2654435761) % 1000) as f64 / 100.0 - 5.0).collect()
    }

    #[test]
    fn empty_and_oversized_queries() {
        assert!(sliding_dot_product(&[], &[1.0, 2.0]).is_empty());
        assert!(sliding_dot_product(&[1.0, 2.0, 3.0], &[1.0, 2.0]).is_empty());
        assert!(sliding_dot_product_naive(&[], &[]).is_empty());
    }

    #[test]
    fn naive_matches_hand_computation() {
        let qt = sliding_dot_product_naive(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_close(&qt, &[11.0, 14.0], 1e-12); // 1*3+2*4, 1*4+2*5
    }

    #[test]
    fn query_equal_to_series_gives_single_dot() {
        let s = [1.0, -2.0, 3.0];
        let qt = sliding_dot_product(&s, &s);
        assert_close(&qt, &[14.0], 1e-9);
    }

    #[test]
    fn fft_plan_matches_naive() {
        let series = pseudo_series(700);
        for &m in &[1usize, 2, 33, 128, 400, 700] {
            let query = &series[7.min(700 - m)..7.min(700 - m) + m];
            let plan = SlidingDotPlan::new(&series);
            let fast = plan.dot(query);
            let slow = sliding_dot_product_naive(query, &series);
            assert_close(&fast, &slow, 1e-5);
        }
    }

    #[test]
    fn dispatcher_matches_naive_across_cutoff() {
        let series = pseudo_series(1200);
        for &m in &[8usize, 32, 33, 64, 256] {
            let query: Vec<f64> = series[100..100 + m].to_vec();
            let fast = sliding_dot_product(&query, &series);
            let slow = sliding_dot_product_naive(&query, &series);
            assert_close(&fast, &slow, 1e-5);
        }
    }

    #[test]
    fn plan_is_reusable_across_queries() {
        let series = pseudo_series(512);
        let plan = SlidingDotPlan::new(&series);
        assert_eq!(plan.series_len(), 512);
        for &m in &[40usize, 41, 100] {
            let query: Vec<f64> = series[3..3 + m].to_vec();
            assert_close(&plan.dot(&query), &sliding_dot_product_naive(&query, &series), 1e-6);
        }
    }
}
