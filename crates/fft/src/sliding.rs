//! Sliding dot products — the core primitive of the MASS algorithm.
//!
//! Given a query `q` of length `m` and a series `t` of length `n ≥ m`, the
//! sliding dot product is the vector `QT` with
//! `QT[i] = Σ_{k<m} q[k]·t[i+k]` for `i in 0..=n-m`. Computing it as a
//! cross-correlation in the frequency domain costs O(n log n) instead of
//! O(n·m); both inputs are real, so the transforms run on the half-size
//! real-input path ([`crate::RealFft`]).

use crate::{next_pow2, Complex64, RealFft};

/// Direct O(n·m) sliding dot product, used as a reference and for short
/// queries where it beats the FFT path.
///
/// Returns an empty vector when the query is empty or longer than the series.
#[must_use]
pub fn sliding_dot_product_naive(query: &[f64], series: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    sliding_dot_product_naive_into(query, series, &mut out);
    out
}

/// [`sliding_dot_product_naive`] writing into a caller-provided vector
/// (cleared first), so hot loops can reuse the allocation.
///
/// # Performance
///
/// Each output is a fused multiply-add *chain* over the query — a serial
/// dependency, so a scalar loop is FMA-latency-bound (~4–5 cycles per
/// element, which at paper scale made a single VALMOD recomputation row
/// cost tens of milliseconds). The hot path therefore computes **2·W
/// outputs at once** (two width-`W` accumulators, written once against
/// [`crate::simd::F64Lanes`] and instantiated at W=4 under AVX2+FMA and
/// W=8 under AVX-512): the independent chains hide the latency, and every
/// `series` load serves `W` adjacent outputs. Lane `i` still accumulates
/// `q[0]·t[i]`, `q[1]·t[i+1]`, … in exactly the scalar order, one fused
/// operation per term, so the vectorized outputs are **byte-identical**
/// to the scalar loop's at every width — the dispatch
/// ([`crate::simd::simd_level`]) selects an instruction encoding, never a
/// summation order. The portable levels take the scalar chain directly:
/// at width 1 the "lanes" degenerate to it anyway.
pub fn sliding_dot_product_naive_into(query: &[f64], series: &[f64], out: &mut Vec<f64>) {
    out.clear();
    let m = query.len();
    let n = series.len();
    if m == 0 || m > n {
        return;
    }
    out.reserve(n - m + 1);
    match crate::simd::simd_level() {
        #[cfg(target_arch = "x86_64")]
        crate::simd::SimdLevel::Avx512 => {
            let b = crate::simd::Avx512::new().expect("dispatch verified AVX-512");
            // SAFETY: the `Avx512` token proves the target features.
            unsafe { naive_into_avx512(b, query, series, out) }
        }
        #[cfg(target_arch = "x86_64")]
        crate::simd::SimdLevel::Avx2 => {
            let b = crate::simd::Avx2::new().expect("dispatch verified AVX2+FMA");
            // SAFETY: the `Avx2` token proves the target features.
            unsafe { naive_into_avx2(b, query, series, out) }
        }
        _ => naive_into_scalar(query, series, out),
    }
}

/// The portable naive kernel: one chained fused multiply-add per term.
fn naive_into_scalar(query: &[f64], series: &[f64], out: &mut Vec<f64>) {
    let m = query.len();
    let n = series.len();
    for i in 0..=n - m {
        let window = &series[i..i + m];
        let mut acc = 0.0;
        for (q, w) in query.iter().zip(window) {
            acc = q.mul_add(*w, acc);
        }
        out.push(acc);
    }
}

/// The lane-generic naive kernel body: `2·W` output positions per
/// iteration (two accumulators to hide FMA latency), each lane running
/// the scalar accumulation chain verbatim (see
/// [`sliding_dot_product_naive_into`] for the bit-identity argument).
/// Instantiated inside a `#[target_feature]` wrapper per packed backend
/// so the `#[inline(always)]` lane ops compile to bare vector
/// instructions.
#[inline(always)]
fn naive_into_lanes<const W: usize, B: crate::simd::F64Lanes<W>>(
    b: B,
    query: &[f64],
    series: &[f64],
    out: &mut Vec<f64>,
) {
    let m = query.len();
    let n = series.len();
    let outputs = n - m + 1;
    let block = 2 * W;
    let mut buf_lo = [0.0f64; W];
    let mut buf_hi = [0.0f64; W];
    let mut i = 0;
    while i + block <= outputs {
        let mut acc_lo = b.splat(0.0);
        let mut acc_hi = b.splat(0.0);
        // Term `k` loads `series[i + k .. i + k + 2W]`; the highest index
        // touched is `i + (m − 1) + 2W − 1 ≤ (outputs − 2W) + m + 2W − 2 =
        // n − 1`, so the slice-checked lane loads never panic.
        for (k, &q) in query.iter().enumerate() {
            let qv = b.splat(q);
            acc_lo = b.mul_add(qv, b.load(&series[i + k..]), acc_lo);
            acc_hi = b.mul_add(qv, b.load(&series[i + k + W..]), acc_hi);
        }
        b.store(acc_lo, &mut buf_lo);
        b.store(acc_hi, &mut buf_hi);
        out.extend_from_slice(&buf_lo);
        out.extend_from_slice(&buf_hi);
        i += block;
    }
    // Remainder outputs: the scalar chain (identical arithmetic).
    for i in i..outputs {
        let window = &series[i..i + m];
        let mut acc = 0.0;
        for (q, w) in query.iter().zip(window) {
            acc = q.mul_add(*w, acc);
        }
        out.push(acc);
    }
}

/// [`naive_into_lanes`] at W=4 under AVX2+FMA (8 outputs per iteration).
///
/// # Safety
///
/// The `Avx2` token proves the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn naive_into_avx2(b: crate::simd::Avx2, query: &[f64], series: &[f64], out: &mut Vec<f64>) {
    naive_into_lanes::<4, _>(b, query, series, out);
}

/// [`naive_into_lanes`] at W=8 under AVX-512 (16 outputs per iteration).
///
/// # Safety
///
/// The `Avx512` token proves the CPU supports AVX-512 F/DQ/VL (+AVX2+FMA).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq,avx512vl,avx2,fma")]
unsafe fn naive_into_avx512(
    b: crate::simd::Avx512,
    query: &[f64],
    series: &[f64],
    out: &mut Vec<f64>,
) {
    naive_into_lanes::<8, _>(b, query, series, out);
}

/// Cost-model dispatch between the naive and FFT sliding-dot paths.
///
/// `transforms` is how many size-`S` transforms the FFT path pays: 3 for a
/// one-shot product (series forward, query forward, one inverse) and 2 when
/// a prebuilt [`SlidingDotPlan`] amortizes the series transform. The naive
/// path costs one fused multiply-add per `(query, window)` pair; the FFT
/// path costs ~`S·log2(S)` butterfly-equivalents per transform with
/// `S = next_pow2(2n)`. Short queries always go naive: their inner loop
/// vectorizes and has no setup cost.
#[must_use]
pub fn naive_is_faster(m: usize, n: usize, transforms: u32) -> bool {
    if m == 0 || m > n || m <= 32 {
        return true;
    }
    let size = next_pow2((2 * n).max(2)) as u64;
    let naive_cost = (m as u64).saturating_mul((n - m + 1) as u64);
    let fft_cost = u64::from(transforms).saturating_mul(size * u64::from(size.trailing_zeros()));
    naive_cost <= fft_cost
}

/// Sliding dot product of `query` against every window of `series`.
///
/// Picks the naive or the FFT algorithm based on [`naive_is_faster`] with
/// the one-shot cost (3 transforms). For repeated queries against the same
/// series, prefer [`SlidingDotPlan`], which reuses the series spectrum.
#[must_use]
pub fn sliding_dot_product(query: &[f64], series: &[f64]) -> Vec<f64> {
    let m = query.len();
    let n = series.len();
    if m == 0 || m > n {
        return Vec::new();
    }
    if naive_is_faster(m, n, 3) {
        return sliding_dot_product_naive(query, series);
    }
    SlidingDotPlan::new(series).dot(query)
}

/// A reusable plan holding the real-input FFT of a series, so that many
/// queries (as in STAMP, or VALMOD's per-row recomputation) each cost one
/// forward and one inverse half-size transform instead of two full complex
/// forward ones.
#[derive(Debug, Clone)]
pub struct SlidingDotPlan {
    rfft: RealFft,
    /// Forward half-spectrum of the (zero-padded) series.
    series_spectrum: Vec<Complex64>,
    series_len: usize,
}

/// Reusable buffers for [`SlidingDotPlan::dot_into`]. One instance per
/// thread; create with [`SlidingDotPlan::scratch`].
#[derive(Debug, Clone)]
pub struct SlidingDotScratch {
    /// Packed half-size signal (FFT working buffer).
    packed: Vec<Complex64>,
    /// Query spectrum, overwritten by the product spectrum.
    spectrum: Vec<Complex64>,
    /// Full-length correlation in the time domain.
    time: Vec<f64>,
}

impl SlidingDotPlan {
    /// Builds a plan for the given series.
    ///
    /// The FFT size is the next power of two of `2 * series.len()`, large
    /// enough for any query length up to the series length.
    #[must_use]
    pub fn new(series: &[f64]) -> Self {
        let n = series.len();
        let rfft = RealFft::new(next_pow2((2 * n).max(2)));
        let mut packed = rfft.packed_buffer();
        let mut spectrum = rfft.spectrum_buffer();
        rfft.forward(series, &mut packed, &mut spectrum);
        Self { rfft, series_spectrum: spectrum, series_len: n }
    }

    /// Length of the series this plan was built for.
    #[inline]
    #[must_use]
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Allocates scratch buffers sized for this plan.
    #[must_use]
    pub fn scratch(&self) -> SlidingDotScratch {
        SlidingDotScratch {
            packed: self.rfft.packed_buffer(),
            spectrum: self.rfft.spectrum_buffer(),
            time: vec![0.0; self.rfft.size()],
        }
    }

    /// Sliding dot product of `query` against the planned series.
    ///
    /// Returns an empty vector when the query is empty or longer than the
    /// series. Allocates fresh buffers per call — use [`Self::dot_into`]
    /// with a reused [`SlidingDotScratch`] on hot paths.
    #[must_use]
    pub fn dot(&self, query: &[f64]) -> Vec<f64> {
        let mut scratch = self.scratch();
        let mut out = Vec::new();
        self.dot_into(query, &mut scratch, &mut out);
        out
    }

    /// Sliding dot product written into `out` (cleared first), reusing
    /// `scratch` — the allocation-free variant for per-row recomputation
    /// loops.
    ///
    /// The dot products are computed as a cross-correlation,
    /// `IFFT(conj(Q)·T)`, which needs no reversed-query copy.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was built for a different plan size.
    pub fn dot_into(&self, query: &[f64], scratch: &mut SlidingDotScratch, out: &mut Vec<f64>) {
        out.clear();
        let m = query.len();
        let n = self.series_len;
        if m == 0 || m > n {
            return;
        }
        self.rfft.forward(query, &mut scratch.packed, &mut scratch.spectrum);
        for (q, s) in scratch.spectrum.iter_mut().zip(&self.series_spectrum) {
            *q = q.conj() * *s;
        }
        self.rfft.inverse(&scratch.spectrum, &mut scratch.packed, &mut scratch.time);
        out.extend_from_slice(&scratch.time[..=n - m]);
    }
}

#[cfg(test)]
mod tests {
    use super::{naive_is_faster, sliding_dot_product, sliding_dot_product_naive, SlidingDotPlan};

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "mismatch at {i}: {x} vs {y}");
        }
    }

    fn pseudo_series(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 2654435761) % 1000) as f64 / 100.0 - 5.0).collect()
    }

    #[test]
    fn empty_and_oversized_queries() {
        assert!(sliding_dot_product(&[], &[1.0, 2.0]).is_empty());
        assert!(sliding_dot_product(&[1.0, 2.0, 3.0], &[1.0, 2.0]).is_empty());
        assert!(sliding_dot_product_naive(&[], &[]).is_empty());
        assert!(SlidingDotPlan::new(&[1.0, 2.0]).dot(&[1.0, 2.0, 3.0]).is_empty());
    }

    #[test]
    fn naive_matches_hand_computation() {
        let qt = sliding_dot_product_naive(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_close(&qt, &[11.0, 14.0], 1e-12); // 1*3+2*4, 1*4+2*5
    }

    #[test]
    fn query_equal_to_series_gives_single_dot() {
        let s = [1.0, -2.0, 3.0];
        let qt = sliding_dot_product(&s, &s);
        assert_close(&qt, &[14.0], 1e-9);
    }

    #[test]
    fn fft_plan_matches_naive() {
        let series = pseudo_series(700);
        for &m in &[1usize, 2, 33, 128, 400, 700] {
            let query = &series[7.min(700 - m)..7.min(700 - m) + m];
            let plan = SlidingDotPlan::new(&series);
            let fast = plan.dot(query);
            let slow = sliding_dot_product_naive(query, &series);
            assert_close(&fast, &slow, 1e-5);
        }
    }

    #[test]
    fn dispatcher_matches_naive_across_cutoff() {
        let series = pseudo_series(1200);
        for &m in &[8usize, 32, 33, 64, 256] {
            let query: Vec<f64> = series[100..100 + m].to_vec();
            let fast = sliding_dot_product(&query, &series);
            let slow = sliding_dot_product_naive(&query, &series);
            assert_close(&fast, &slow, 1e-5);
        }
    }

    #[test]
    fn plan_is_reusable_across_queries() {
        let series = pseudo_series(512);
        let plan = SlidingDotPlan::new(&series);
        assert_eq!(plan.series_len(), 512);
        for &m in &[40usize, 41, 100] {
            let query: Vec<f64> = series[3..3 + m].to_vec();
            assert_close(&plan.dot(&query), &sliding_dot_product_naive(&query, &series), 1e-6);
        }
    }

    #[test]
    fn scratch_variant_matches_allocating_dot() {
        let series = pseudo_series(900);
        let plan = SlidingDotPlan::new(&series);
        let mut scratch = plan.scratch();
        let mut out = Vec::new();
        for &m in &[50usize, 51, 300, 900] {
            let query: Vec<f64> = series[0..m].to_vec();
            plan.dot_into(&query, &mut scratch, &mut out);
            assert_eq!(out, plan.dot(&query), "scratch path diverged at m={m}");
            assert_close(&out, &sliding_dot_product_naive(&query, &series), 1e-5);
        }
        // Oversized query clears the output instead of leaving stale data.
        plan.dot_into(&vec![0.0; 901], &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn vectorized_naive_is_byte_identical_to_scalar() {
        // Every packed width's lanes each run the scalar accumulation
        // chain verbatim, so every output must match the portable kernel
        // bit for bit — including ragged tails (outputs % 2W ≠ 0) and
        // queries spanning the whole series. The override sweeps the
        // dispatch levels in-process; levels the CPU cannot encode fall
        // back to the portable stand-in and the case degenerates to a
        // self-check.
        use crate::simd::{override_simd, LaneWidth, SimdOverride};
        let overrides = [
            SimdOverride { portable: true, width: None },
            SimdOverride { portable: false, width: Some(LaneWidth::W4) },
            SimdOverride { portable: false, width: Some(LaneWidth::W8) },
        ];
        for forced in overrides {
            let _g = override_simd(forced);
            for n in [9usize, 64, 257, 1000] {
                let series = pseudo_series(n);
                for m in [1usize, 2, 7, 33, 80, n] {
                    if m > n {
                        continue;
                    }
                    let query: Vec<f64> = series[(n - m) / 2..(n - m) / 2 + m].to_vec();
                    let mut scalar = Vec::new();
                    super::naive_into_scalar(&query, &series, &mut scalar);
                    let dispatched = super::sliding_dot_product_naive(&query, &series);
                    assert_eq!(scalar.len(), dispatched.len());
                    for (i, (a, b)) in scalar.iter().zip(&dispatched).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "lane output diverged at {forced:?} n={n} m={m} i={i}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cost_model_prefers_naive_for_short_series() {
        // The regression the model fixes: a mid-size query over a short
        // series (m·n above the old 2^14 area threshold) where the padded
        // FFT clearly loses to m·(n−m+1) fused multiply-adds.
        assert!(naive_is_faster(40, 500, 3));
        // Tiny queries are always naive.
        assert!(naive_is_faster(8, 1_000_000, 3));
        // Long queries over long series belong to the FFT.
        assert!(!naive_is_faster(1024, 16_384, 3));
        assert!(!naive_is_faster(4096, 100_000, 2));
        // Degenerate shapes fall back to naive (which returns empty).
        assert!(naive_is_faster(0, 10, 3));
        assert!(naive_is_faster(20, 10, 3));
    }
}
