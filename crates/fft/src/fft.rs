//! Planned, iterative radix-2 FFT.
//!
//! A [`Fft`] instance precomputes the bit-reversal permutation and twiddle
//! factors for a fixed power-of-two size, so repeated transforms of the same
//! size (the common case in MASS, which transforms many queries against one
//! series) pay the trigonometry cost once.

use crate::Complex64;

/// A reusable FFT plan for a fixed power-of-two size.
///
/// # Example
///
/// ```
/// use valmod_fft::{Complex64, Fft};
///
/// let fft = Fft::new(8);
/// let mut buf: Vec<Complex64> =
///     (0..8).map(|i| Complex64::from_real(i as f64)).collect();
/// let orig = buf.clone();
/// fft.forward(&mut buf);
/// fft.inverse(&mut buf);
/// for (a, b) in buf.iter().zip(&orig) {
///     assert!((a.re - b.re).abs() < 1e-9);
///     assert!(a.im.abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    size: usize,
    /// Twiddle factors e^{-2πik/size} for k in 0..size/2 (forward direction).
    twiddles: Vec<Complex64>,
    /// Bit-reversal permutation: `rev[i]` is `i` with log2(size) bits reversed.
    rev: Vec<u32>,
}

impl Fft {
    /// Builds a plan for transforms of length `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a power of two.
    #[must_use]
    pub fn new(size: usize) -> Self {
        assert!(size.is_power_of_two(), "FFT size must be a power of two, got {size}");
        assert!(size <= u32::MAX as usize, "FFT size too large: {size}");
        let half = size / 2;
        let mut twiddles = Vec::with_capacity(half.max(1));
        let step = -2.0 * std::f64::consts::PI / size as f64;
        for k in 0..half.max(1) {
            twiddles.push(Complex64::cis(step * k as f64));
        }
        let bits = size.trailing_zeros();
        let mut rev = vec![0u32; size];
        for (i, r) in rev.iter_mut().enumerate() {
            *r = (i as u32).reverse_bits() >> (32 - bits.max(1)) & ((size - 1) as u32);
        }
        // For size == 1 the shift above is meaningless; fix up explicitly.
        if size == 1 {
            rev[0] = 0;
        }
        Self { size, twiddles, rev }
    }

    /// The transform length this plan was built for.
    #[inline]
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// In-place forward DFT: `X[k] = Σ_n x[n] e^{-2πikn/N}`.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the planned size.
    pub fn forward(&self, buf: &mut [Complex64]) {
        self.transform(buf, false);
    }

    /// In-place inverse DFT, including the `1/N` scaling, so that
    /// `inverse(forward(x)) == x` up to floating-point error.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the planned size.
    pub fn inverse(&self, buf: &mut [Complex64]) {
        self.transform(buf, true);
        let scale = 1.0 / self.size as f64;
        for v in buf.iter_mut() {
            *v = v.scale(scale);
        }
    }

    fn transform(&self, buf: &mut [Complex64], invert: bool) {
        assert_eq!(
            buf.len(),
            self.size,
            "buffer length {} does not match FFT plan size {}",
            buf.len(),
            self.size
        );
        let n = self.size;
        if n <= 1 {
            return;
        }

        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }

        // Iterative Cooley-Tukey butterflies.
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let mut w = self.twiddles[k * stride];
                    if invert {
                        w = w.conj();
                    }
                    let u = buf[start + k];
                    let v = buf[start + k + half] * w;
                    buf[start + k] = u + v;
                    buf[start + k + half] = u - v;
                }
            }
            len *= 2;
        }
    }
}

/// Reference O(n²) DFT used only by tests to validate the FFT.
#[cfg(test)]
pub(crate) fn dft_naive(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (t, &x) in input.iter().enumerate() {
            let angle = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
            acc += x * Complex64::cis(angle);
        }
        *o = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::{dft_naive, Fft};
    use crate::Complex64;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "mismatch at {i}: {x:?} vs {y:?}"
            );
        }
    }

    fn ramp(n: usize) -> Vec<Complex64> {
        (0..n).map(|i| Complex64::new(i as f64 * 0.7 - 3.0, (i as f64).sin())).collect()
    }

    #[test]
    fn size_one_is_identity() {
        let fft = Fft::new(1);
        let mut buf = vec![Complex64::new(4.2, -1.0)];
        fft.forward(&mut buf);
        assert_eq!(buf[0], Complex64::new(4.2, -1.0));
        fft.inverse(&mut buf);
        assert_eq!(buf[0], Complex64::new(4.2, -1.0));
    }

    #[test]
    fn size_two_butterfly() {
        let fft = Fft::new(2);
        let mut buf = vec![Complex64::from_real(1.0), Complex64::from_real(2.0)];
        fft.forward(&mut buf);
        assert!((buf[0].re - 3.0).abs() < 1e-12);
        assert!((buf[1].re + 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_naive_dft_on_multiple_sizes() {
        for &n in &[2usize, 4, 8, 16, 64, 256] {
            let input = ramp(n);
            let mut buf = input.clone();
            let fft = Fft::new(n);
            fft.forward(&mut buf);
            let expected = dft_naive(&input);
            assert_close(&buf, &expected, 1e-8 * n as f64);
        }
    }

    #[test]
    fn forward_then_inverse_roundtrips() {
        for &n in &[1usize, 2, 8, 128, 1024] {
            let input = ramp(n);
            let mut buf = input.clone();
            let fft = Fft::new(n);
            fft.forward(&mut buf);
            fft.inverse(&mut buf);
            assert_close(&buf, &input, 1e-9 * (n as f64).max(1.0));
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 16;
        let fft = Fft::new(n);
        let mut buf = vec![Complex64::ZERO; n];
        buf[0] = Complex64::ONE;
        fft.forward(&mut buf);
        for v in &buf {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 256;
        let input = ramp(n);
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let mut buf = input;
        let fft = Fft::new(n);
        fft.forward(&mut buf);
        let freq_energy: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy.abs().max(1.0));
    }

    #[test]
    fn linearity() {
        let n = 64;
        let a = ramp(n);
        let b: Vec<Complex64> =
            (0..n).map(|i| Complex64::new((i as f64).cos(), 0.25 * i as f64)).collect();
        let fft = Fft::new(n);

        let mut fa = a.clone();
        fft.forward(&mut fa);
        let mut fb = b.clone();
        fft.forward(&mut fb);

        let mut sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        fft.forward(&mut sum);

        for i in 0..n {
            let expect = fa[i] + fb[i];
            assert!((sum[i].re - expect.re).abs() < 1e-8);
            assert!((sum[i].im - expect.im).abs() < 1e-8);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Fft::new(12);
    }

    #[test]
    #[should_panic(expected = "does not match FFT plan size")]
    fn rejects_mismatched_buffer() {
        let fft = Fft::new(8);
        let mut buf = vec![Complex64::ZERO; 4];
        fft.forward(&mut buf);
    }
}
