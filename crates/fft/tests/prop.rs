//! Property tests for the FFT substrate.

use proptest::prelude::*;
use valmod_fft::{
    convolve, convolve_naive, sliding_dot_product, sliding_dot_product_naive, Complex64, Fft,
};

fn bounded_signal(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// inverse(forward(x)) == x for arbitrary signals at power-of-two sizes.
    #[test]
    fn fft_roundtrips(re in bounded_signal(64), im in bounded_signal(64)) {
        let n = re.len().min(im.len()).next_power_of_two();
        let mut buf: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(
                re.get(i).copied().unwrap_or(0.0),
                im.get(i).copied().unwrap_or(0.0),
            ))
            .collect();
        let orig = buf.clone();
        let fft = Fft::new(n);
        fft.forward(&mut buf);
        fft.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&orig) {
            prop_assert!((a.re - b.re).abs() < 1e-8);
            prop_assert!((a.im - b.im).abs() < 1e-8);
        }
    }

    /// Parseval: energy is preserved by the transform.
    #[test]
    fn fft_preserves_energy(re in bounded_signal(128)) {
        let n = re.len().next_power_of_two();
        let mut buf: Vec<Complex64> =
            (0..n).map(|i| Complex64::from_real(re.get(i).copied().unwrap_or(0.0))).collect();
        let time: f64 = buf.iter().map(|z| z.norm_sqr()).sum();
        let fft = Fft::new(n);
        fft.forward(&mut buf);
        let freq: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time - freq).abs() <= 1e-6 * time.max(1.0));
    }

    /// FFT convolution equals the naive convolution.
    #[test]
    fn convolve_matches_naive(a in bounded_signal(96), b in bounded_signal(96)) {
        let fast = convolve(&a, &b);
        let slow = convolve_naive(&a, &b);
        prop_assert_eq!(fast.len(), slow.len());
        for (x, y) in fast.iter().zip(&slow) {
            prop_assert!((x - y).abs() < 1e-5, "{} vs {}", x, y);
        }
    }

    /// The sliding dot product dispatcher equals the naive definition for
    /// every valid query length.
    #[test]
    fn sliding_dots_match_naive(series in bounded_signal(200), frac in 0.01f64..1.0) {
        let m = ((series.len() as f64 * frac) as usize).clamp(1, series.len());
        let query: Vec<f64> = series[..m].to_vec();
        let fast = sliding_dot_product(&query, &series);
        let slow = sliding_dot_product_naive(&query, &series);
        prop_assert_eq!(fast.len(), slow.len());
        for (x, y) in fast.iter().zip(&slow) {
            prop_assert!((x - y).abs() < 1e-5, "{} vs {}", x, y);
        }
    }
}
