//! Property tests for the matrix-profile engines.

use proptest::prelude::*;
use valmod_mp::default_exclusion;
use valmod_mp::mass::{distance_profile_brute, DistanceProfiler};
use valmod_mp::motif::top_k_pairs;
use valmod_mp::stamp::stamp;
use valmod_mp::stomp::{stomp, stomp_parallel};

/// Series long enough to host interesting windows, values bounded so the
/// numerics stay comparable to the brute-force reference.
fn series(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, 40..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// MASS distance profiles equal the brute-force definition.
    #[test]
    fn mass_equals_brute(values in series(140), seed in 0usize..10_000) {
        let l = 4 + seed % 12;
        if valmod_mp::validate_window(values.len(), l).is_err() {
            return Ok(());
        }
        let offset = seed % (values.len() - l + 1);
        let profiler = DistanceProfiler::new(&values).unwrap();
        let fast = profiler.self_profile(offset, l).unwrap();
        let slow = distance_profile_brute(&values, offset, l).unwrap();
        for (i, (x, y)) in fast.iter().zip(&slow).enumerate() {
            prop_assert!((x - y).abs() < 1e-5, "at {}: {} vs {}", i, x, y);
        }
    }

    /// STOMP, parallel STOMP and STAMP agree everywhere.
    #[test]
    fn engines_agree(values in series(120), l_seed in 0usize..8) {
        let l = 4 + l_seed * 2;
        if valmod_mp::validate_window(values.len(), l).is_err() {
            return Ok(());
        }
        let excl = default_exclusion(l);
        let a = stomp(&values, l, excl).unwrap();
        let b = stamp(&values, l, excl).unwrap();
        let c = stomp_parallel(&values, l, excl, 3).unwrap();
        for i in 0..a.len() {
            prop_assert!((a.values[i] - b.values[i]).abs() < 1e-5,
                "stamp differs at {}: {} vs {}", i, a.values[i], b.values[i]);
            prop_assert!((a.values[i] - c.values[i]).abs() < 1e-6,
                "parallel differs at {}: {} vs {}", i, a.values[i], c.values[i]);
        }
    }

    /// Profile invariants: symmetric-by-construction minima, exclusion
    /// respected, distances within the theoretical bound 2√ℓ.
    #[test]
    fn profile_invariants(values in series(100), l_seed in 0usize..6) {
        let l = 4 + l_seed * 3;
        if valmod_mp::validate_window(values.len(), l).is_err() {
            return Ok(());
        }
        let excl = default_exclusion(l);
        let mp = stomp(&values, l, excl).unwrap();
        mp.check_invariants();
        let cap = 2.0 * (l as f64).sqrt() + 1e-6;
        for (i, &d) in mp.values.iter().enumerate() {
            prop_assert!(d.is_finite(), "entry {} should have a neighbor", i);
            prop_assert!(d <= cap, "distance {} exceeds 2*sqrt(l) at {}", d, i);
        }
    }

    /// top-k extraction: ascending distances, no overlapping pairs, at
    /// most k results.
    #[test]
    fn top_k_selection_is_sound(values in series(100), k in 1usize..6) {
        let l = 8;
        if valmod_mp::validate_window(values.len(), l).is_err() {
            return Ok(());
        }
        let mp = stomp(&values, l, default_exclusion(l)).unwrap();
        let pairs = top_k_pairs(&mp, k);
        prop_assert!(pairs.len() <= k);
        for w in pairs.windows(2) {
            prop_assert!(w[0].distance <= w[1].distance);
            prop_assert!(!w[0].overlaps(&w[1], mp.exclusion));
        }
        for p in &pairs {
            prop_assert!(p.a < p.b);
            prop_assert!(p.b - p.a > mp.exclusion);
        }
    }
}
