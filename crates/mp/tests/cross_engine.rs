//! Cross-engine integration tests on the field-science workloads
//! (seismic, EPG) — datasets with sharp transients and flat-ish rests that
//! stress different code paths than the smooth ECG/ASTRO generators.

use valmod_mp::abjoin::abjoin;
use valmod_mp::default_exclusion;
use valmod_mp::scrimp::scrimp;
use valmod_mp::stamp::stamp;
use valmod_mp::stomp::{stomp, stomp_parallel};
use valmod_mp::streaming::StreamingProfile;
use valmod_series::gen;

fn seismic(n: usize) -> Vec<f64> {
    gen::seismic(n, &gen::SeismicConfig::default(), 40)
}

fn epg(n: usize) -> Vec<f64> {
    gen::epg(n, &gen::EpgConfig::default(), 41)
}

#[test]
fn all_engines_agree_on_seismic_data() {
    let series = seismic(600);
    let l = 32;
    let excl = default_exclusion(l);
    let reference = stomp(&series, l, excl).unwrap();
    let others = [
        ("stamp", stamp(&series, l, excl).unwrap()),
        ("stomp_par", stomp_parallel(&series, l, excl, 3).unwrap()),
        ("scrimp_full", scrimp(&series, l, excl, 1.0, 0).unwrap()),
    ];
    for (name, mp) in &others {
        for i in 0..reference.len() {
            assert!(
                (reference.values[i] - mp.values[i]).abs() < 1e-5,
                "{name} differs at {i}: {} vs {}",
                reference.values[i],
                mp.values[i]
            );
        }
    }
}

#[test]
fn all_engines_agree_on_epg_data() {
    let series = epg(500);
    let l = 24;
    let excl = default_exclusion(l);
    let reference = stomp(&series, l, excl).unwrap();
    let anytime = scrimp(&series, l, excl, 1.0, 3).unwrap();
    for i in 0..reference.len() {
        assert!((reference.values[i] - anytime.values[i]).abs() < 1e-5, "at {i}");
    }
}

#[test]
fn scrimp_is_deterministic_per_seed() {
    let series = seismic(400);
    let a = scrimp(&series, 16, 4, 0.4, 11).unwrap();
    let b = scrimp(&series, 16, 4, 0.4, 11).unwrap();
    assert_eq!(a, b);
    let c = scrimp(&series, 16, 4, 0.4, 12).unwrap();
    assert_ne!(a, c, "different seeds should sample different diagonals");
}

#[test]
fn streaming_tracks_batch_on_transient_data() {
    let series = seismic(500);
    let l = 20;
    let excl = default_exclusion(l);
    let mut sp = StreamingProfile::new(&series[..120], l, excl).unwrap();
    for &v in &series[120..] {
        sp.append(v);
    }
    let batch = stomp(&series, l, excl).unwrap();
    for i in 0..batch.len() {
        assert!((sp.profile().values[i] - batch.values[i]).abs() < 1e-5, "streaming drifts at {i}");
    }
}

#[test]
fn valmod_matches_brute_force_across_a_length_range() {
    // The range search must agree with the per-length brute force on the
    // same transient-heavy data the engine tests above use.
    let series = seismic(400);
    let (l_min, l_max) = (16, 24);
    let config = valmod_core::ValmodConfig::new(l_min, l_max).with_k(1);
    let out = valmod_core::run_valmod(&series, &config).unwrap();
    assert_eq!(out.per_length.len(), l_max - l_min + 1);
    for r in &out.per_length {
        let want = valmod_baselines::brute_best_pair(&series, r.length, config.exclusion(r.length))
            .unwrap();
        match (r.pairs.first(), want) {
            (Some(got), Some(want)) => {
                assert!(
                    (got.distance - want.distance).abs() < 1e-6,
                    "length {}: valmod {:?} vs brute {:?}",
                    r.length,
                    got,
                    want
                );
            }
            (None, None) => {}
            other => panic!("presence mismatch at length {}: {:?}", r.length, other),
        }
    }
}

#[test]
fn abjoin_directions_are_consistent() {
    // Each direction's minimum must point at the same globally closest
    // cross pair (the join matrix is shared; only the argmin dimension
    // differs).
    let a = seismic(300);
    let b = epg(260);
    let l = 16;
    let join = abjoin(&a, &b, l).unwrap();
    let (ia, jb, d_ab) = join.a_to_b.min_entry().unwrap();
    let (jb2, ia2, d_ba) = join.b_to_a.min_entry().unwrap();
    assert!((d_ab - d_ba).abs() < 1e-9, "global minima must match");
    assert_eq!((ia, jb), (ia2, jb2), "and point at the same pair");
}

#[test]
fn abjoin_of_different_length_series() {
    let a = seismic(300);
    let b = seismic(150);
    let l = 24;
    let join = abjoin(&a, &b, l).unwrap();
    assert_eq!(join.a_to_b.len(), 300 - l + 1);
    assert_eq!(join.b_to_a.len(), 150 - l + 1);
    // Same generator family: close matches must exist in both directions.
    assert!(join.a_to_b.min_entry().is_some());
    assert!(join.b_to_a.min_entry().is_some());
}
