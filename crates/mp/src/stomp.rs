//! STOMP (Matrix Profile II): the O(n²) exact matrix-profile engine.
//!
//! STOMP's insight is that the dot product between windows `(i, j)` follows
//! from the one between `(i−1, j−1)` in O(1):
//!
//! ```text
//! QT(i, j) = QT(i−1, j−1) − t[i−1]·t[j−1] + t[i+ℓ−1]·t[j+ℓ−1]
//! ```
//!
//! so the whole distance matrix streams row by row with O(1) work per cell.
//! [`StompEngine::for_each_row`] exposes exactly that stream — VALMOD's
//! first stage consumes it to harvest its partial distance profiles — and
//! [`stomp`] / [`stomp_parallel`] fold it into a [`MatrixProfile`].

use valmod_fft::sliding_dot_product;
use valmod_series::stats::FLAT_EPS;
use valmod_series::znorm::{dist_from_pearson, zdist_from_dot};
use valmod_series::{Result, RollingStats};

use crate::profile::MatrixProfile;
use crate::{shifted, validate_window};

/// Streaming access to the rows of the QT (dot-product) matrix for one
/// series and window length.
#[derive(Debug)]
pub struct StompEngine {
    values: Vec<f64>,
    l: usize,
    /// Number of subsequences, `n − ℓ + 1`.
    m: usize,
    means: Vec<f64>,
    stds: Vec<f64>,
    /// `QT(0, j)` for all `j` — also the start of every diagonal.
    first_row: Vec<f64>,
}

impl StompEngine {
    /// Precomputes statistics and the first QT row. O(n log n).
    ///
    /// # Errors
    ///
    /// [`valmod_series::SeriesError::TooShort`] via [`validate_window`].
    pub fn new(series: &[f64], l: usize) -> Result<Self> {
        validate_window(series.len(), l)?;
        let values = shifted(series);
        let stats = RollingStats::new(&values);
        let m = values.len() - l + 1;
        let means = stats.means_for_length(l);
        let stds = stats.stds_for_length(l);
        let first_row = sliding_dot_product(&values[..l], &values);
        debug_assert_eq!(first_row.len(), m);
        Ok(Self { values, l, m, means, stds, first_row })
    }

    /// Window length.
    #[must_use]
    pub fn window(&self) -> usize {
        self.l
    }

    /// Number of subsequences (profile length).
    #[must_use]
    pub fn num_windows(&self) -> usize {
        self.m
    }

    /// Per-window means (shifted units — differences and z-normalized
    /// quantities are unaffected by the shift).
    #[must_use]
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-window standard deviations.
    #[must_use]
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// The mean-shifted series values the engine works on.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Whether any window of this length is flat (σ ≈ 0). Engines take a
    /// slower per-entry path when true.
    #[must_use]
    pub fn has_flat_windows(&self) -> bool {
        self.stds.iter().any(|&s| s < FLAT_EPS)
    }

    /// Streams every QT row in offset order. `on_row(i, qt)` receives the
    /// full dot-product row for subsequence `i` (length `m`, no exclusion
    /// applied).
    pub fn for_each_row(&self, mut on_row: impl FnMut(usize, &[f64])) {
        let (l, m) = (self.l, self.m);
        let t = &self.values;
        let mut qt = self.first_row.clone();
        on_row(0, &qt);
        for i in 1..m {
            // Descending j keeps qt[j-1] from the previous row available.
            for j in (1..m).rev() {
                qt[j] = (t[i + l - 1]).mul_add(t[j + l - 1], qt[j - 1] - t[i - 1] * t[j - 1]);
            }
            qt[0] = self.first_row[i]; // symmetry of the self-join
            on_row(i, &qt);
        }
    }

    /// Converts one QT row into z-normalized distances (the *distance
    /// profile* of subsequence `i`), honoring the flat-window convention.
    #[must_use]
    pub fn distances_for_row(&self, i: usize, qt: &[f64]) -> Vec<f64> {
        qt.iter()
            .enumerate()
            .map(|(j, &dot)| {
                zdist_from_dot(
                    dot,
                    self.l,
                    self.means[i],
                    self.stds[i],
                    self.means[j],
                    self.stds[j],
                )
            })
            .collect()
    }
}

/// Exact fixed-length Matrix Profile via serial STOMP.
///
/// `exclusion` is the trivial-match half-width: window `j` is admissible
/// for window `i` iff `|i − j| > exclusion`.
///
/// # Errors
///
/// [`valmod_series::SeriesError::TooShort`] via [`validate_window`].
pub fn stomp(series: &[f64], l: usize, exclusion: usize) -> Result<MatrixProfile> {
    let engine = StompEngine::new(series, l)?;
    let m = engine.num_windows();
    let mut mp = MatrixProfile::unfilled(l, exclusion, m);

    if engine.has_flat_windows() {
        // Slow path: per-entry distances with the flat conventions.
        engine.for_each_row(|i, qt| {
            for (j, &dot) in qt.iter().enumerate() {
                if i.abs_diff(j) > exclusion {
                    let d = zdist_from_dot(
                        dot,
                        l,
                        engine.means[i],
                        engine.stds[i],
                        engine.means[j],
                        engine.stds[j],
                    );
                    mp.offer(i, d, j);
                }
            }
        });
        return Ok(mp);
    }

    // Fast path: maximize correlation in a branch-light inner loop.
    let inv_stds: Vec<f64> = engine.stds.iter().map(|&s| 1.0 / s).collect();
    let lf = l as f64;
    engine.for_each_row(|i, qt| {
        let a_i = lf * engine.means[i];
        let mut best_score = f64::NEG_INFINITY;
        let mut best_j = usize::MAX;
        let lo = i.saturating_sub(exclusion);
        let hi = (i + exclusion).min(m - 1);
        let mut scan = |range: std::ops::Range<usize>| {
            for j in range {
                // score ∝ ρ(i, j); the positive factors common to the row
                // are applied once after the scan.
                let score = (qt[j] - a_i * engine.means[j]) * inv_stds[j];
                if score > best_score {
                    best_score = score;
                    best_j = j;
                }
            }
        };
        scan(0..lo);
        scan(hi + 1..m);
        if best_j != usize::MAX {
            let rho = best_score * inv_stds[i] / lf;
            mp.offer(i, dist_from_pearson(rho, l), best_j);
        }
    });
    Ok(mp)
}

/// Exact fixed-length Matrix Profile via diagonal-parallel STOMP.
///
/// The self-join distance matrix is symmetric, so it suffices to walk the
/// diagonals above the exclusion band; along a diagonal the dot product
/// updates in O(1) *independently of other diagonals*, which makes the
/// traversal embarrassingly parallel (this is also how SCRIMP orders its
/// computation). Falls back to the serial engine when flat windows are
/// present (the rho-space merge is undefined for them) or when
/// `threads <= 1`.
///
/// # Errors
///
/// [`valmod_series::SeriesError::TooShort`] via [`validate_window`].
pub fn stomp_parallel(
    series: &[f64],
    l: usize,
    exclusion: usize,
    threads: usize,
) -> Result<MatrixProfile> {
    let engine = StompEngine::new(series, l)?;
    if threads <= 1 || engine.has_flat_windows() {
        return stomp(series, l, exclusion);
    }
    let m = engine.num_windows();
    let lf = l as f64;
    let inv_stds: Vec<f64> = engine.stds.iter().map(|&s| 1.0 / s).collect();
    let t = &engine.values;
    let first_diag = exclusion + 1;
    if first_diag >= m {
        return Ok(MatrixProfile::unfilled(l, exclusion, m));
    }

    // Each worker walks an interleaved subset of diagonals and records the
    // best correlation per row locally; merging picks the max.
    let num_workers = threads.min(m - first_diag);
    let mut results: Vec<(Vec<f64>, Vec<usize>)> = Vec::with_capacity(num_workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_workers);
        for w in 0..num_workers {
            let engine = &engine;
            let inv_stds = &inv_stds;
            handles.push(scope.spawn(move || {
                let mut best = vec![f64::NEG_INFINITY; m];
                let mut best_idx = vec![usize::MAX; m];
                let mut k = first_diag + w;
                while k < m {
                    let mut qt = engine.first_row[k];
                    for i in 0..m - k {
                        let j = i + k;
                        if i > 0 {
                            qt = t[i + l - 1].mul_add(t[j + l - 1], qt - t[i - 1] * t[j - 1]);
                        }
                        let rho = (qt - lf * engine.means[i] * engine.means[j])
                            * inv_stds[i]
                            * inv_stds[j]
                            / lf;
                        if rho > best[i] {
                            best[i] = rho;
                            best_idx[i] = j;
                        }
                        if rho > best[j] {
                            best[j] = rho;
                            best_idx[j] = i;
                        }
                    }
                    k += num_workers;
                }
                (best, best_idx)
            }));
        }
        for h in handles {
            results.push(h.join().expect("stomp worker panicked"));
        }
    });

    let mut mp = MatrixProfile::unfilled(l, exclusion, m);
    for i in 0..m {
        let (rho, j) = results
            .iter()
            .map(|(best, idx)| (best[i], idx[i]))
            .max_by(|a, b| a.0.partial_cmp(&b.0).expect("rho is never NaN"))
            .expect("at least one worker");
        if j != usize::MAX {
            mp.offer(i, dist_from_pearson(rho, l), j);
        }
    }
    Ok(mp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_exclusion;
    use crate::mass::distance_profile_brute;
    use valmod_series::gen;

    /// Brute-force reference matrix profile.
    fn brute_mp(series: &[f64], l: usize, exclusion: usize) -> MatrixProfile {
        let m = series.len() - l + 1;
        let mut mp = MatrixProfile::unfilled(l, exclusion, m);
        for i in 0..m {
            let profile = distance_profile_brute(series, i, l).unwrap();
            for (j, &d) in profile.iter().enumerate() {
                if i.abs_diff(j) > exclusion {
                    mp.offer(i, d, j);
                }
            }
        }
        mp
    }

    fn assert_profiles_match(a: &MatrixProfile, b: &MatrixProfile, tol: f64) {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert!(
                (a.values[i] - b.values[i]).abs() < tol,
                "distance mismatch at {i}: {} vs {}",
                a.values[i],
                b.values[i]
            );
        }
    }

    #[test]
    fn stomp_matches_brute_force_on_random_walk() {
        let series = gen::random_walk(300, 17);
        for &l in &[8usize, 16, 50] {
            let excl = default_exclusion(l);
            let fast = stomp(&series, l, excl).unwrap();
            let slow = brute_mp(&series, l, excl);
            assert_profiles_match(&fast, &slow, 1e-6);
            fast.check_invariants();
        }
    }

    #[test]
    fn stomp_matches_brute_force_on_ecg() {
        let series = gen::ecg(400, &gen::EcgConfig::default(), 5);
        let l = 32;
        let excl = default_exclusion(l);
        let fast = stomp(&series, l, excl).unwrap();
        let slow = brute_mp(&series, l, excl);
        assert_profiles_match(&fast, &slow, 1e-6);
    }

    #[test]
    fn stomp_handles_flat_regions() {
        let mut series = gen::white_noise(200, 3, 1.0);
        for v in &mut series[80..130] {
            *v = 2.0; // plateau: flat windows
        }
        let l = 16;
        let excl = default_exclusion(l);
        let fast = stomp(&series, l, excl).unwrap();
        let slow = brute_mp(&series, l, excl);
        assert_profiles_match(&fast, &slow, 1e-6);
        // Two distinct flat windows match each other at distance 0.
        let inside = 90;
        assert!(fast.values[inside] < 1e-9);
    }

    #[test]
    fn parallel_matches_serial() {
        let series = gen::astro(500, &gen::AstroConfig::default(), 21);
        for &l in &[16usize, 64] {
            let excl = default_exclusion(l);
            let serial = stomp(&series, l, excl).unwrap();
            for threads in [2usize, 3, 8] {
                let parallel = stomp_parallel(&series, l, excl, threads).unwrap();
                assert_profiles_match(&serial, &parallel, 1e-7);
                parallel.check_invariants();
            }
        }
    }

    #[test]
    fn planted_motif_is_the_profile_minimum() {
        let pattern: Vec<f64> =
            (0..60).map(|i| (i as f64 / 60.0 * std::f64::consts::TAU * 3.0).sin()).collect();
        let (series, truth) = gen::planted_pair(3000, &pattern, &[500, 2100], 0.01, 13);
        let l = truth.length;
        let mp = stomp(&series, l, default_exclusion(l)).unwrap();
        let (i, j, d) = mp.min_entry().unwrap();
        let (lo, hi) = (i.min(j), i.max(j));
        assert!(lo.abs_diff(truth.offsets[0]) <= 2, "found {lo} expected ~{}", truth.offsets[0]);
        assert!(hi.abs_diff(truth.offsets[1]) <= 2, "found {hi} expected ~{}", truth.offsets[1]);
        assert!(d < 0.5);
    }

    #[test]
    fn exclusion_zone_is_respected() {
        let series = gen::sine_mix(400, &[(40.0, 1.0)], 0.0, 2);
        let mp = stomp(&series, 16, 20).unwrap();
        for (i, idx) in mp.indices.iter().enumerate() {
            if let Some(j) = idx {
                assert!(i.abs_diff(*j) > 20);
            }
        }
    }

    #[test]
    fn oversized_exclusion_leaves_profile_unfilled() {
        let series = gen::random_walk(60, 4);
        let mp = stomp(&series, 8, 1000).unwrap();
        assert!(mp.min_entry().is_none());
        assert!(mp.values.iter().all(|d| d.is_infinite()));
        let par = stomp_parallel(&series, 8, 1000, 4).unwrap();
        assert!(par.min_entry().is_none());
    }

    #[test]
    fn engine_rejects_invalid_windows() {
        let series = gen::random_walk(50, 4);
        assert!(StompEngine::new(&series, 3).is_err());
        assert!(StompEngine::new(&series, 49).is_err()); // no room for exclusion
        assert!(StompEngine::new(&series, 36).is_ok()); // 36 + 9 + 1 = 46 ≤ 50
    }

    #[test]
    fn rows_stream_matches_direct_dot_products() {
        let series = gen::random_walk(120, 8);
        let l = 10;
        let engine = StompEngine::new(&series, l).unwrap();
        let values = engine.values().to_vec();
        engine.for_each_row(|i, qt| {
            for (j, &dot) in qt.iter().enumerate() {
                let direct: f64 = (0..l).map(|k| values[i + k] * values[j + k]).sum();
                assert!((dot - direct).abs() < 1e-7, "QT mismatch at ({i},{j}): {dot} vs {direct}");
            }
        });
    }
}
