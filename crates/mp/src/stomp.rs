//! STOMP (Matrix Profile II): the O(n²) exact matrix-profile engine.
//!
//! STOMP's insight is that the dot product between windows `(i, j)` follows
//! from the one between `(i−1, j−1)` in O(1):
//!
//! ```text
//! QT(i, j) = QT(i−1, j−1) − t[i−1]·t[j−1] + t[i+ℓ−1]·t[j+ℓ−1]
//! ```
//!
//! so the whole distance matrix streams row by row with O(1) work per cell.
//! [`StompEngine::for_each_row`] exposes exactly that stream — VALMOD's
//! first stage consumes it to harvest its partial distance profiles — and
//! [`stomp`] / [`stomp_parallel`] fold it into a [`MatrixProfile`].

use valmod_fft::sliding_dot_product;
use valmod_series::stats::FLAT_EPS;
use valmod_series::znorm::{dist_from_pearson, zdist_from_dot};
use valmod_series::{Result, RollingStats};

use crate::pool::WorkerPool;
use crate::profile::MatrixProfile;
use crate::{shifted, validate_window};

/// Streaming access to the rows of the QT (dot-product) matrix for one
/// series and window length.
#[derive(Debug)]
pub struct StompEngine {
    values: Vec<f64>,
    l: usize,
    /// Number of subsequences, `n − ℓ + 1`.
    m: usize,
    means: Vec<f64>,
    stds: Vec<f64>,
    /// `QT(0, j)` for all `j` — also the start of every diagonal.
    first_row: Vec<f64>,
}

impl StompEngine {
    /// Precomputes statistics and the first QT row. O(n log n).
    ///
    /// # Errors
    ///
    /// [`valmod_series::SeriesError::TooShort`] via [`validate_window`].
    pub fn new(series: &[f64], l: usize) -> Result<Self> {
        validate_window(series.len(), l)?;
        let values = shifted(series);
        let stats = RollingStats::new(&values);
        let m = values.len() - l + 1;
        let means = stats.means_for_length(l);
        let stds = stats.stds_for_length(l);
        let first_row = sliding_dot_product(&values[..l], &values);
        debug_assert_eq!(first_row.len(), m);
        Ok(Self { values, l, m, means, stds, first_row })
    }

    /// Window length.
    #[must_use]
    pub fn window(&self) -> usize {
        self.l
    }

    /// Number of subsequences (profile length).
    #[must_use]
    pub fn num_windows(&self) -> usize {
        self.m
    }

    /// Per-window means (shifted units — differences and z-normalized
    /// quantities are unaffected by the shift).
    #[must_use]
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-window standard deviations.
    #[must_use]
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// The mean-shifted series values the engine works on.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Whether any window of this length is flat (σ ≈ 0). Engines take a
    /// slower per-entry path when true.
    #[must_use]
    pub fn has_flat_windows(&self) -> bool {
        self.stds.iter().any(|&s| s < FLAT_EPS)
    }

    /// `QT(0, j)` for all `j` — the first dot-product row, which is also
    /// the starting value of every diagonal.
    #[must_use]
    pub fn first_row(&self) -> &[f64] {
        &self.first_row
    }

    /// Walks the upper-triangle diagonals `start, start + step, …` of the
    /// QT matrix, calling `on_cell(i, j, qt)` for every cell `(i, j = i +
    /// k)` of each visited diagonal `k`, in cell order along the diagonal.
    ///
    /// Along a diagonal the dot product updates in O(1) independently of
    /// every other diagonal, so disjoint interleaved subsets (`start = w`,
    /// `step = num_workers`) partition the triangle into embarrassingly
    /// parallel chunks — the traversal behind [`stomp_parallel`] and
    /// VALMOD's parallel stage 1. The per-cell arithmetic is identical for
    /// every partitioning, so results never depend on the worker count.
    ///
    /// # Panics
    ///
    /// Debug-asserts `start ≥ 1` (diagonal 0 is the self-match diagonal)
    /// and `step ≥ 1`.
    pub fn walk_diagonals(
        &self,
        start: usize,
        step: usize,
        mut on_cell: impl FnMut(usize, usize, f64),
    ) {
        debug_assert!(start >= 1 && step >= 1);
        let (l, m) = (self.l, self.m);
        let t = &self.values;
        let mut k = start;
        while k < m {
            let mut qt = self.first_row[k];
            on_cell(0, k, qt);
            for i in 1..m - k {
                let j = i + k;
                qt = t[i + l - 1].mul_add(t[j + l - 1], qt - t[i - 1] * t[j - 1]);
                on_cell(i, j, qt);
            }
            k += step;
        }
    }

    /// Streams every QT row in offset order. `on_row(i, qt)` receives the
    /// full dot-product row for subsequence `i` (length `m`, no exclusion
    /// applied).
    pub fn for_each_row(&self, mut on_row: impl FnMut(usize, &[f64])) {
        let (l, m) = (self.l, self.m);
        let t = &self.values;
        let mut qt = self.first_row.clone();
        on_row(0, &qt);
        for i in 1..m {
            // Descending j keeps qt[j-1] from the previous row available.
            for j in (1..m).rev() {
                qt[j] = (t[i + l - 1]).mul_add(t[j + l - 1], qt[j - 1] - t[i - 1] * t[j - 1]);
            }
            qt[0] = self.first_row[i]; // symmetry of the self-join
            on_row(i, &qt);
        }
    }

    /// Converts one QT row into z-normalized distances (the *distance
    /// profile* of subsequence `i`), honoring the flat-window convention.
    #[must_use]
    pub fn distances_for_row(&self, i: usize, qt: &[f64]) -> Vec<f64> {
        qt.iter()
            .enumerate()
            .map(|(j, &dot)| {
                zdist_from_dot(
                    dot,
                    self.l,
                    self.means[i],
                    self.stds[i],
                    self.means[j],
                    self.stds[j],
                )
            })
            .collect()
    }
}

/// Exact fixed-length Matrix Profile via serial STOMP.
///
/// `exclusion` is the trivial-match half-width: window `j` is admissible
/// for window `i` iff `|i − j| > exclusion`.
///
/// # Errors
///
/// [`valmod_series::SeriesError::TooShort`] via [`validate_window`].
pub fn stomp(series: &[f64], l: usize, exclusion: usize) -> Result<MatrixProfile> {
    let engine = StompEngine::new(series, l)?;
    let m = engine.num_windows();
    let mut mp = MatrixProfile::unfilled(l, exclusion, m);

    if engine.has_flat_windows() {
        // Slow path: per-entry distances with the flat conventions.
        engine.for_each_row(|i, qt| {
            for (j, &dot) in qt.iter().enumerate() {
                if i.abs_diff(j) > exclusion {
                    let d = zdist_from_dot(
                        dot,
                        l,
                        engine.means[i],
                        engine.stds[i],
                        engine.means[j],
                        engine.stds[j],
                    );
                    mp.offer(i, d, j);
                }
            }
        });
        return Ok(mp);
    }

    // Fast path: maximize correlation in a branch-light inner loop.
    let inv_stds: Vec<f64> = engine.stds.iter().map(|&s| 1.0 / s).collect();
    let lf = l as f64;
    engine.for_each_row(|i, qt| {
        let a_i = lf * engine.means[i];
        let mut best_score = f64::NEG_INFINITY;
        let mut best_j = usize::MAX;
        let lo = i.saturating_sub(exclusion);
        let hi = (i + exclusion).min(m - 1);
        let mut scan = |range: std::ops::Range<usize>| {
            for j in range {
                // score ∝ ρ(i, j); the positive factors common to the row
                // are applied once after the scan.
                let score = (qt[j] - a_i * engine.means[j]) * inv_stds[j];
                if score > best_score {
                    best_score = score;
                    best_j = j;
                }
            }
        };
        scan(0..lo);
        scan(hi + 1..m);
        if best_j != usize::MAX {
            let rho = best_score * inv_stds[i] / lf;
            mp.offer(i, dist_from_pearson(rho, l), best_j);
        }
    });
    Ok(mp)
}

/// Exact fixed-length Matrix Profile via diagonal-parallel STOMP.
///
/// The self-join distance matrix is symmetric, so it suffices to walk the
/// diagonals above the exclusion band; along a diagonal the dot product
/// updates in O(1) *independently of other diagonals*, which makes the
/// traversal embarrassingly parallel (this is also how SCRIMP orders its
/// computation — see [`StompEngine::walk_diagonals`]).
///
/// Worker-local bests are kept under the total order "(score, then smaller
/// neighbor offset)", and the same order merges them, so the result is
/// **identical for every `threads` value** — including `threads == 1`,
/// which runs the same walk inline without spawning. Flat (σ ≈ 0) windows
/// take a distance-space walk with the flat-window conventions instead of
/// the correlation-space fast path.
///
/// # Errors
///
/// [`valmod_series::SeriesError::TooShort`] via [`validate_window`].
pub fn stomp_parallel(
    series: &[f64],
    l: usize,
    exclusion: usize,
    threads: usize,
) -> Result<MatrixProfile> {
    stomp_parallel_in(series, l, exclusion, threads, WorkerPool::global())
}

/// [`stomp_parallel`] running its workers on a caller-supplied
/// [`WorkerPool`] instead of the process-wide one. Results are identical
/// for every pool (and every thread count) — the pool only carries the
/// threads, never the math.
///
/// # Errors
///
/// As [`stomp_parallel`].
pub fn stomp_parallel_in(
    series: &[f64],
    l: usize,
    exclusion: usize,
    threads: usize,
    pool: &WorkerPool,
) -> Result<MatrixProfile> {
    let engine = StompEngine::new(series, l)?;
    let m = engine.num_windows();
    let mut mp = MatrixProfile::unfilled(l, exclusion, m);
    let first_diag = exclusion + 1;
    if first_diag >= m {
        return Ok(mp);
    }
    let num_workers = threads.max(1).min(m - first_diag);

    if engine.has_flat_windows() {
        // Distance-space walk: per-cell flat conventions, minimize (d, j).
        let worker = |w: usize| {
            let mut best = vec![f64::INFINITY; m];
            let mut best_idx = vec![usize::MAX; m];
            engine.walk_diagonals(first_diag + w, num_workers, |i, j, qt| {
                let d = zdist_from_dot(
                    qt,
                    l,
                    engine.means[i],
                    engine.stds[i],
                    engine.means[j],
                    engine.stds[j],
                );
                if d < best[i] || (d == best[i] && j < best_idx[i]) {
                    best[i] = d;
                    best_idx[i] = j;
                }
                if d < best[j] || (d == best[j] && i < best_idx[j]) {
                    best[j] = d;
                    best_idx[j] = i;
                }
            });
            (best, best_idx)
        };
        let results = pool.run(num_workers, worker);
        for i in 0..m {
            let (d, j) = results
                .iter()
                .map(|(best, idx)| (best[i], idx[i]))
                .reduce(|acc, cand| {
                    if cand.0 < acc.0 || (cand.0 == acc.0 && cand.1 < acc.1) {
                        cand
                    } else {
                        acc
                    }
                })
                .expect("at least one worker");
            if j != usize::MAX {
                mp.offer(i, d, j);
            }
        }
        return Ok(mp);
    }

    // Correlation-space fast path: maximize (rho, then smaller j), convert
    // to distances once per row after the merge.
    let lf = l as f64;
    let inv_stds: Vec<f64> = engine.stds.iter().map(|&s| 1.0 / s).collect();
    let worker = |w: usize| {
        let mut best = vec![f64::NEG_INFINITY; m];
        let mut best_idx = vec![usize::MAX; m];
        engine.walk_diagonals(first_diag + w, num_workers, |i, j, qt| {
            let rho =
                (qt - lf * engine.means[i] * engine.means[j]) * inv_stds[i] * inv_stds[j] / lf;
            if rho > best[i] || (rho == best[i] && j < best_idx[i]) {
                best[i] = rho;
                best_idx[i] = j;
            }
            if rho > best[j] || (rho == best[j] && i < best_idx[j]) {
                best[j] = rho;
                best_idx[j] = i;
            }
        });
        (best, best_idx)
    };
    let results = pool.run(num_workers, worker);
    for i in 0..m {
        let (rho, j) =
            results
                .iter()
                .map(|(best, idx)| (best[i], idx[i]))
                .reduce(|acc, cand| {
                    if cand.0 > acc.0 || (cand.0 == acc.0 && cand.1 < acc.1) {
                        cand
                    } else {
                        acc
                    }
                })
                .expect("at least one worker");
        if j != usize::MAX {
            mp.offer(i, dist_from_pearson(rho, l), j);
        }
    }
    Ok(mp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_exclusion;
    use crate::mass::distance_profile_brute;
    use valmod_series::gen;

    /// Brute-force reference matrix profile.
    fn brute_mp(series: &[f64], l: usize, exclusion: usize) -> MatrixProfile {
        let m = series.len() - l + 1;
        let mut mp = MatrixProfile::unfilled(l, exclusion, m);
        for i in 0..m {
            let profile = distance_profile_brute(series, i, l).unwrap();
            for (j, &d) in profile.iter().enumerate() {
                if i.abs_diff(j) > exclusion {
                    mp.offer(i, d, j);
                }
            }
        }
        mp
    }

    fn assert_profiles_match(a: &MatrixProfile, b: &MatrixProfile, tol: f64) {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert!(
                (a.values[i] - b.values[i]).abs() < tol,
                "distance mismatch at {i}: {} vs {}",
                a.values[i],
                b.values[i]
            );
        }
    }

    #[test]
    fn stomp_matches_brute_force_on_random_walk() {
        let series = gen::random_walk(300, 17);
        for &l in &[8usize, 16, 50] {
            let excl = default_exclusion(l);
            let fast = stomp(&series, l, excl).unwrap();
            let slow = brute_mp(&series, l, excl);
            assert_profiles_match(&fast, &slow, 1e-6);
            fast.check_invariants();
        }
    }

    #[test]
    fn stomp_matches_brute_force_on_ecg() {
        let series = gen::ecg(400, &gen::EcgConfig::default(), 5);
        let l = 32;
        let excl = default_exclusion(l);
        let fast = stomp(&series, l, excl).unwrap();
        let slow = brute_mp(&series, l, excl);
        assert_profiles_match(&fast, &slow, 1e-6);
    }

    #[test]
    fn stomp_handles_flat_regions() {
        let mut series = gen::white_noise(200, 3, 1.0);
        for v in &mut series[80..130] {
            *v = 2.0; // plateau: flat windows
        }
        let l = 16;
        let excl = default_exclusion(l);
        let fast = stomp(&series, l, excl).unwrap();
        let slow = brute_mp(&series, l, excl);
        assert_profiles_match(&fast, &slow, 1e-6);
        // Two distinct flat windows match each other at distance 0.
        let inside = 90;
        assert!(fast.values[inside] < 1e-9);
    }

    #[test]
    fn parallel_matches_serial() {
        let series = gen::astro(500, &gen::AstroConfig::default(), 21);
        for &l in &[16usize, 64] {
            let excl = default_exclusion(l);
            let serial = stomp(&series, l, excl).unwrap();
            for threads in [2usize, 3, 8] {
                let parallel = stomp_parallel(&series, l, excl, threads).unwrap();
                assert_profiles_match(&serial, &parallel, 1e-7);
                parallel.check_invariants();
            }
        }
    }

    #[test]
    fn parallel_handles_flat_regions() {
        // A plateau creates flat (sigma = 0) windows; the parallel engine
        // must take its distance-space path and agree with serial STOMP.
        let mut series = gen::white_noise(260, 9, 1.0);
        for v in &mut series[100..150] {
            *v = 2.0;
        }
        let l = 16;
        let excl = default_exclusion(l);
        let serial = stomp(&series, l, excl).unwrap();
        for threads in [1usize, 2, 4] {
            let parallel = stomp_parallel(&series, l, excl, threads).unwrap();
            assert_profiles_match(&serial, &parallel, 1e-9);
            parallel.check_invariants();
        }
    }

    #[test]
    fn parallel_is_bit_identical_across_thread_counts() {
        // The diagonal walk and its merges are partition-independent, so
        // any two thread counts must produce *exactly* the same profile.
        for series in [gen::random_walk(400, 31), {
            let mut s = gen::white_noise(400, 7, 1.0);
            for v in &mut s[200..260] {
                *v = 1.0; // flat plateau: distance-space path
            }
            s
        }] {
            let l = 24;
            let excl = default_exclusion(l);
            let one = stomp_parallel(&series, l, excl, 1).unwrap();
            for threads in [2usize, 3, 8] {
                let other = stomp_parallel(&series, l, excl, threads).unwrap();
                for i in 0..one.len() {
                    assert_eq!(
                        one.values[i].to_bits(),
                        other.values[i].to_bits(),
                        "distance differs at {i} with {threads} threads"
                    );
                    assert_eq!(one.indices[i], other.indices[i], "index differs at {i}");
                }
            }
        }
    }

    #[test]
    fn planted_motif_is_the_profile_minimum() {
        let pattern: Vec<f64> =
            (0..60).map(|i| (i as f64 / 60.0 * std::f64::consts::TAU * 3.0).sin()).collect();
        let (series, truth) = gen::planted_pair(3000, &pattern, &[500, 2100], 0.01, 13);
        let l = truth.length;
        let mp = stomp(&series, l, default_exclusion(l)).unwrap();
        let (i, j, d) = mp.min_entry().unwrap();
        let (lo, hi) = (i.min(j), i.max(j));
        assert!(lo.abs_diff(truth.offsets[0]) <= 2, "found {lo} expected ~{}", truth.offsets[0]);
        assert!(hi.abs_diff(truth.offsets[1]) <= 2, "found {hi} expected ~{}", truth.offsets[1]);
        assert!(d < 0.5);
    }

    #[test]
    fn exclusion_zone_is_respected() {
        let series = gen::sine_mix(400, &[(40.0, 1.0)], 0.0, 2);
        let mp = stomp(&series, 16, 20).unwrap();
        for (i, idx) in mp.indices.iter().enumerate() {
            if let Some(j) = idx {
                assert!(i.abs_diff(*j) > 20);
            }
        }
    }

    #[test]
    fn oversized_exclusion_leaves_profile_unfilled() {
        let series = gen::random_walk(60, 4);
        let mp = stomp(&series, 8, 1000).unwrap();
        assert!(mp.min_entry().is_none());
        assert!(mp.values.iter().all(|d| d.is_infinite()));
        let par = stomp_parallel(&series, 8, 1000, 4).unwrap();
        assert!(par.min_entry().is_none());
    }

    #[test]
    fn engine_rejects_invalid_windows() {
        let series = gen::random_walk(50, 4);
        assert!(StompEngine::new(&series, 3).is_err());
        assert!(StompEngine::new(&series, 49).is_err()); // no room for exclusion
        assert!(StompEngine::new(&series, 36).is_ok()); // 36 + 9 + 1 = 46 ≤ 50
    }

    #[test]
    fn rows_stream_matches_direct_dot_products() {
        let series = gen::random_walk(120, 8);
        let l = 10;
        let engine = StompEngine::new(&series, l).unwrap();
        let values = engine.values().to_vec();
        engine.for_each_row(|i, qt| {
            for (j, &dot) in qt.iter().enumerate() {
                let direct: f64 = (0..l).map(|k| values[i + k] * values[j + k]).sum();
                assert!((dot - direct).abs() < 1e-7, "QT mismatch at ({i},{j}): {dot} vs {direct}");
            }
        });
    }
}
