#![warn(missing_docs)]

//! Matrix Profile engines for the VALMOD suite.
//!
//! The Matrix Profile of a series `T` for window length `ℓ` is the vector
//! whose `i`-th entry is the z-normalized Euclidean distance between the
//! subsequence `T[i..i+ℓ)` and its best *non-trivial* match elsewhere in
//! `T`, together with the offset of that match (the *index profile*). The
//! motif of length `ℓ` is the pair realizing the global minimum.
//!
//! This crate implements the two classic exact engines plus the primitives
//! they share:
//!
//! * [`mass`] — MASS v2 distance profiles (FFT-based, O(n log n) per query);
//! * [`stamp`] — Matrix Profile I: one MASS call per subsequence;
//! * [`stomp`] — Matrix Profile II: incremental dot products, O(n²) total,
//!   with a diagonal-parallel variant;
//! * [`profile`] / [`motif`] — the [`MatrixProfile`] container, top-k motif
//!   pair and discord extraction.
//!
//! # Example
//!
//! ```
//! use valmod_mp::{stomp::stomp, motif::top_k_pairs, default_exclusion};
//! use valmod_series::gen;
//!
//! // A sine wave repeats: every window has a near-perfect match one period away.
//! let series = gen::sine_mix(600, &[(50.0, 1.0)], 0.01, 7);
//! let l = 32;
//! let mp = stomp(&series, l, default_exclusion(l)).unwrap();
//! let motifs = top_k_pairs(&mp, 1);
//! assert_eq!(motifs.len(), 1);
//! assert!(motifs[0].distance < 1.0);
//! ```

pub mod abjoin;
pub mod mass;
pub mod motif;
pub mod pool;
pub mod profile;
pub mod scrimp;
pub mod stamp;
pub mod stomp;
pub mod streaming;

pub use abjoin::{abjoin, AbJoin};
pub use mass::{DistanceProfiler, ProfileScratch};
pub use motif::{top_k_pairs, MotifPair};
pub use pool::{LaneHandle, LanePriority, LaneSaturated, LaneTicket, WorkerPool};
pub use profile::MatrixProfile;
pub use scrimp::scrimp;
pub use streaming::StreamingProfile;

/// Smallest supported subsequence length. Below this, z-normalized shapes
/// carry almost no information and the matrix-profile literature does not
/// define useful motifs.
pub const MIN_WINDOW: usize = 4;

/// The standard trivial-match exclusion zone: `max(1, ⌈ℓ/4⌉)`, as used by
/// the matrix-profile papers (STAMP/STOMP).
#[must_use]
pub fn default_exclusion(l: usize) -> usize {
    (l.div_ceil(4)).max(1)
}

/// Validates a `(series length, window)` combination shared by all engines.
///
/// # Errors
///
/// [`valmod_series::SeriesError::TooShort`] when `l < MIN_WINDOW`, or when
/// fewer than two non-trivially-matching subsequences of length `l` exist.
pub fn validate_window(n: usize, l: usize) -> valmod_series::Result<()> {
    if l < MIN_WINDOW {
        return Err(valmod_series::SeriesError::TooShort { len: l, needed: MIN_WINDOW });
    }
    // Need at least two windows separated by the minimal exclusion zone.
    let needed = l + default_exclusion(l) + 1;
    if n < needed {
        return Err(valmod_series::SeriesError::TooShort { len: n, needed });
    }
    Ok(())
}

/// Subtracts the global mean from a series.
///
/// Z-normalized distances are shift-invariant, but the dot products flowing
/// through STOMP/MASS are not: removing the global offset keeps their
/// magnitudes small and the `QT − ℓμμ` cancellation benign. Every engine
/// calls this once at entry.
#[must_use]
pub(crate) fn shifted(values: &[f64]) -> Vec<f64> {
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    values.iter().map(|v| v - mean).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_exclusion_follows_quarter_rule() {
        assert_eq!(default_exclusion(4), 1);
        assert_eq!(default_exclusion(8), 2);
        assert_eq!(default_exclusion(10), 3);
        assert_eq!(default_exclusion(100), 25);
    }

    #[test]
    fn validate_window_bounds() {
        assert!(validate_window(100, 3).is_err()); // window below MIN_WINDOW
        assert!(validate_window(5, 4).is_err()); // needs 4 + 1 + 1 = 6 points
        assert!(validate_window(6, 4).is_ok());
        assert!(validate_window(8, 4).is_ok());
        assert!(validate_window(1000, 64).is_ok());
    }

    #[test]
    fn shifted_removes_global_mean() {
        let s = shifted(&[1.0, 2.0, 3.0]);
        assert!(s.iter().sum::<f64>().abs() < 1e-12);
    }
}
