//! AB-joins: the cross-series matrix profile.
//!
//! Matrix Profile I is titled "*All Pairs Similarity Joins* for Time
//! Series" — the self-join (motifs within one series) is the special case
//! the rest of this suite focuses on, but the general form joins two
//! different series: for every subsequence of `A`, the distance to its
//! nearest neighbor *in `B`* (and vice versa). No exclusion zone applies,
//! since positions in different series cannot be trivial matches.
//!
//! The STOMP dot-product recurrence works unchanged across two series, so
//! the join costs O(|A|·|B|).

use valmod_fft::sliding_dot_product;
use valmod_series::stats::FLAT_EPS;
use valmod_series::znorm::{dist_from_pearson, zdist_from_dot};
use valmod_series::{Result, RollingStats, SeriesError};

use crate::profile::MatrixProfile;
use crate::{shifted, MIN_WINDOW};

/// The two directed profiles of an AB-join.
#[derive(Debug, Clone, PartialEq)]
pub struct AbJoin {
    /// For each window of `A`: nearest neighbor in `B`.
    pub a_to_b: MatrixProfile,
    /// For each window of `B`: nearest neighbor in `A`.
    pub b_to_a: MatrixProfile,
}

impl AbJoin {
    /// The overall closest cross-series pair `(a offset, b offset,
    /// distance)`.
    #[must_use]
    pub fn closest_pair(&self) -> Option<(usize, usize, f64)> {
        self.a_to_b.min_entry()
    }
}

/// Computes the AB-join of two series at window length `l`.
///
/// # Errors
///
/// [`SeriesError::TooShort`] when either series cannot host a window of
/// `l`, or `l < MIN_WINDOW`.
pub fn abjoin(a: &[f64], b: &[f64], l: usize) -> Result<AbJoin> {
    if l < MIN_WINDOW {
        return Err(SeriesError::TooShort { len: l, needed: MIN_WINDOW });
    }
    for s in [a, b] {
        if s.len() < l {
            return Err(SeriesError::TooShort { len: s.len(), needed: l });
        }
    }
    // Center each series by its own mean (z-normalized distances are
    // shift-invariant per window, so independent shifts are safe).
    let a = shifted(a);
    let b = shifted(b);
    let (ma, mb) = (a.len() - l + 1, b.len() - l + 1);
    let stats_a = RollingStats::new(&a);
    let stats_b = RollingStats::new(&b);
    let means_a = stats_a.means_for_length(l);
    let stds_a = stats_a.stds_for_length(l);
    let means_b = stats_b.means_for_length(l);
    let stds_b = stats_b.stds_for_length(l);

    // QT(0, j) and QT(i, 0) from two sliding-dot passes.
    let first_row = sliding_dot_product(&a[..l], &b); // over B
    let first_col = sliding_dot_product(&b[..l], &a); // over A
    debug_assert_eq!(first_row.len(), mb);
    debug_assert_eq!(first_col.len(), ma);

    let mut a_to_b = MatrixProfile::unfilled(l, 0, ma);
    let mut b_to_a = MatrixProfile::unfilled(l, 0, mb);
    let lf = l as f64;
    let flat = stds_a.iter().chain(&stds_b).any(|&s| s < FLAT_EPS);

    let mut qt = first_row.clone();
    for i in 0..ma {
        if i > 0 {
            for j in (1..mb).rev() {
                qt[j] = a[i + l - 1].mul_add(b[j + l - 1], qt[j - 1] - a[i - 1] * b[j - 1]);
            }
            qt[0] = first_col[i];
        }
        if flat {
            for (j, &dot) in qt.iter().enumerate() {
                let d = zdist_from_dot(dot, l, means_a[i], stds_a[i], means_b[j], stds_b[j]);
                a_to_b.offer(i, d, j);
                b_to_a.offer(j, d, i);
            }
        } else {
            // Fast path in correlation space.
            let a_i = lf * means_a[i];
            let inv_i = 1.0 / stds_a[i];
            for (j, &dot) in qt.iter().enumerate() {
                let rho = ((dot - a_i * means_b[j]) * inv_i / (lf * stds_b[j])).clamp(-1.0, 1.0);
                let d = dist_from_pearson(rho, l);
                a_to_b.offer(i, d, j);
                b_to_a.offer(j, d, i);
            }
        }
    }
    Ok(AbJoin { a_to_b, b_to_a })
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_series::gen;
    use valmod_series::znorm::zdist;

    fn brute_a_to_b(a: &[f64], b: &[f64], l: usize) -> Vec<f64> {
        (0..=a.len() - l)
            .map(|i| {
                (0..=b.len() - l)
                    .map(|j| zdist(&a[i..i + l], &b[j..j + l]))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect()
    }

    #[test]
    fn matches_brute_force_both_directions() {
        let a = gen::random_walk(150, 1);
        let b = gen::random_walk(120, 2);
        let l = 16;
        let join = abjoin(&a, &b, l).unwrap();
        let expect_ab = brute_a_to_b(&a, &b, l);
        let expect_ba = brute_a_to_b(&b, &a, l);
        assert_eq!(join.a_to_b.len(), expect_ab.len());
        for (i, (&got, want)) in join.a_to_b.values.iter().zip(&expect_ab).enumerate() {
            assert!((got - want).abs() < 1e-6, "A->B mismatch at {i}: {got} vs {want}");
        }
        for (j, (&got, want)) in join.b_to_a.values.iter().zip(&expect_ba).enumerate() {
            assert!((got - want).abs() < 1e-6, "B->A mismatch at {j}: {got} vs {want}");
        }
    }

    #[test]
    fn shared_pattern_across_series_is_the_closest_pair() {
        let pattern: Vec<f64> =
            (0..32).map(|i| (i as f64 / 32.0 * std::f64::consts::TAU * 2.0).sin()).collect();
        let (a, _) = gen::planted_pair(800, &pattern, &[200], 0.01, 11);
        let (b, _) = gen::planted_pair(700, &pattern, &[450], 0.01, 22);
        let join = abjoin(&a, &b, 32).unwrap();
        let (ia, jb, d) = join.closest_pair().unwrap();
        assert!(ia.abs_diff(200) <= 2, "A offset {ia}");
        assert!(jb.abs_diff(450) <= 2, "B offset {jb}");
        assert!(d < 0.5);
    }

    #[test]
    fn self_join_without_exclusion_is_zero() {
        let a = gen::sine_mix(200, &[(30.0, 1.0)], 0.1, 3);
        let join = abjoin(&a, &a, 16).unwrap();
        // Every window matches itself exactly.
        for (i, &d) in join.a_to_b.values.iter().enumerate() {
            assert!(d < 1e-6, "self-distance at {i} is {d}");
            assert_eq!(join.a_to_b.indices[i], Some(i));
        }
    }

    #[test]
    fn flat_windows_are_handled() {
        let mut a = gen::white_noise(120, 4, 1.0);
        for v in &mut a[40..70] {
            *v = 1.0;
        }
        let b = gen::white_noise(100, 5, 1.0);
        let join = abjoin(&a, &b, 12).unwrap();
        let expect = brute_a_to_b(&a, &b, 12);
        for (i, (&got, want)) in join.a_to_b.values.iter().zip(&expect).enumerate() {
            assert!((got - want).abs() < 1e-6, "flat A->B mismatch at {i}");
        }
    }

    #[test]
    fn validates_inputs() {
        let a = gen::random_walk(50, 1);
        let b = gen::random_walk(8, 2);
        assert!(abjoin(&a, &b, 3).is_err()); // below MIN_WINDOW
        assert!(abjoin(&a, &b, 16).is_err()); // B too short
        assert!(abjoin(&a, &b, 8).is_ok());
    }
}
