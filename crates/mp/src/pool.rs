//! A persistent worker pool for the suite's scoped fork/join parallelism.
//!
//! Every parallel phase in the suite — VALMOD's stage-1 diagonal walk, the
//! stage-2 per-row chunks, the discord classification loops, STOMP's
//! parallel fold, and the streaming engine's per-length appends — has the
//! same shape: split a batch of independent work across `w` logical
//! workers, run `worker(0) .. worker(w − 1)`, and join. The previous
//! implementation spawned fresh OS threads per phase with
//! [`std::thread::scope`]; at ~10–50 µs per spawn that overhead is paid
//! once per *phase per length*, which on wide length ranges with small `ℓ`
//! rivals the work itself. [`WorkerPool`] keeps the threads alive instead:
//! they park on a condition variable between batches, so dispatching a
//! batch costs one lock + wake instead of `w` thread spawns.
//!
//! # Execution model
//!
//! A batch submitted via [`WorkerPool::run`] pushes its jobs onto a shared
//! queue and then the *submitting thread helps drain the queue* until its
//! own batch completes (it may execute jobs of concurrent batches while
//! its own jobs are in flight, but stops helping once its batch is done).
//! [`PoolScope::submit`] is the non-blocking variant: it enqueues a batch
//! and returns a waitable [`BatchHandle`] immediately, so one thread can
//! keep two batches in flight on the same pool — the software-pipelining
//! primitive behind VALMOD's overlapped stage 2 (the dot-product advance
//! of length ℓ+1 runs while length ℓ classifies).
//! Two consequences:
//!
//! * the pool can never deadlock, even when a batch asks for more workers
//!   than there are pool threads (the caller executes the surplus), and
//!   even if jobs from several concurrent batches interleave;
//! * a single-worker batch runs entirely inline — the serial path pays no
//!   synchronization at all, as the pre-pool scoped-spawn helper
//!   guaranteed.
//!
//! # Determinism
//!
//! The pool adds no ordering of its own: a batch's results are collected
//! into a slot per worker index, so [`WorkerPool::run`] returns exactly
//! what `(0..w).map(worker).collect()` would — *which* thread ran a worker
//! index is invisible. Every engine built on the pool therefore keeps its
//! bit-identical-across-thread-counts property; the equality proptests in
//! `valmod-core` and `valmod-stream` exercise precisely this, on reused
//! pools.
//!
//! # Safety
//!
//! Jobs borrow the submitting thread's stack (the worker closure and the
//! result slots). The pool erases those lifetimes to move jobs across
//! threads, which is sound because [`WorkerPool::run`] does not return
//! until every job of its batch has finished (a latch counts them down,
//! and panics count too) — the same argument `std::thread::scope` makes.
//! Completion is published *under the latch mutex* ([`Latch::count_down`]
//! decrements and notifies while holding the guard), so every access a
//! worker makes to the stack-borrowed batch state happens-before the
//! submitter can observe `remaining == 0` and destroy it. The latch
//! itself lives in an [`Arc`] owned by each job — not on the submitter's
//! stack — so the finishing worker's final mutex unlock and condvar wake
//! touch memory that outlives the `run` frame (the same reason
//! `std::thread::scope` arc-allocates its `ScopeData`). All `unsafe` here
//! is confined to the lifetime erasure and to writing disjoint result
//! slots.

#![deny(unsafe_op_in_unsafe_fn)]

use std::any::Any;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use valmod_obs as obs;

/// Upper bound on OS threads a pool will ever spawn. Batches may request
/// more logical workers than this; the surplus jobs are executed by the
/// pool threads and the helping caller, so results never depend on it.
const MAX_POOL_THREADS: usize = 256;

/// The completion latch of one batch, heap-allocated behind an [`Arc`] so
/// the memory the finishing worker's last unlock/wake touches outlives the
/// submitting `run` frame. Every queued [`Job`] owns a clone; the
/// submitter owns one too.
struct Latch {
    inner: Mutex<LatchInner>,
    /// Wakes the submitter when `remaining` hits zero.
    done: Condvar,
}

struct LatchInner {
    /// Jobs not yet finished (including inline and helped ones).
    remaining: usize,
    /// First worker panic payload; the submitter re-raises it after join.
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new(jobs: usize) -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(LatchInner { remaining: jobs, panic: None }),
            done: Condvar::new(),
        })
    }

    /// Counts one job done, keeping the first panic payload, and wakes the
    /// submitter when the count hits zero. Decrementing and notifying
    /// under the mutex is what makes destroying the batch state sound: the
    /// submitter can only observe `remaining == 0` through this same
    /// mutex, so every prior access the worker made to the stack-borrowed
    /// batch happens-before that observation.
    fn count_down(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut inner = self.inner.lock().expect("batch latch poisoned");
        if inner.panic.is_none() {
            inner.panic = panic;
        }
        inner.remaining -= 1;
        if inner.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Whether every job of the batch has finished (non-blocking).
    fn is_done(&self) -> bool {
        self.inner.lock().expect("batch latch poisoned").remaining == 0
    }

    /// Blocks until every job of the batch has finished; returns the first
    /// panic payload, if any worker panicked.
    fn join(&self) -> Option<Box<dyn Any + Send>> {
        let mut inner = self.inner.lock().expect("batch latch poisoned");
        while inner.remaining > 0 {
            inner = self.done.wait(inner).expect("batch latch poisoned");
        }
        inner.panic.take()
    }
}

/// One queued unit of work: worker index `index` of the batch at `batch`,
/// plus an owned handle on that batch's completion latch.
///
/// The raw pointer is lifetime-erased; see the module docs for why the
/// batch (and everything it borrows) outlives the job. The latch is
/// `Arc`-owned precisely because it must *not* rely on that argument: it
/// is the thing the worker touches last, after which the batch may die.
struct Job {
    batch: *const BatchState,
    latch: Arc<Latch>,
    index: usize,
}

// SAFETY: a `Job`'s `batch` pointer is only ever dereferenced before its
// latch is counted down, while the submitting `WorkerPool::run` frame is
// blocked waiting on that latch, which keeps the pointed-to `BatchState`
// (and the closure/slots it references) alive; the shared state it
// reaches is `Sync` (`&(dyn Fn + Sync)` and disjoint-by-index result
// slots), and `Arc<Latch>` is `Send` on its own.
unsafe impl Send for Job {}

impl Job {
    /// Runs the job's worker and counts the latch down, recording panics.
    /// After this returns, the job's batch may no longer exist.
    ///
    /// # Safety
    ///
    /// `self.batch` must still point at the batch's live state —
    /// guaranteed while the submitting `run` frame waits on the latch.
    unsafe fn execute(self) {
        // SAFETY: forwarded precondition; the latch has not been counted
        // down yet, so the batch is alive.
        let panic = unsafe { (*self.batch).run_worker(self.index) };
        // Last access: heap memory owned by `self.latch`, not the batch.
        self.latch.count_down(panic);
    }
}

/// Per-batch shared state: the type-erased worker call. Lives on the
/// submitting thread's stack for the batch duration.
struct BatchState {
    /// Runs worker `index`; type-erased so the queue holds one job type.
    /// The `*const ()` is the batch's typed context (closure + slots).
    call: unsafe fn(*const (), usize),
    ctx: *const (),
}

impl BatchState {
    /// Runs worker `index`, returning the panic payload if it panicked.
    ///
    /// # Safety
    ///
    /// `self.ctx` must still point at the batch's live typed context —
    /// guaranteed while the submitting `run` frame waits on the latch.
    unsafe fn run_worker(&self, index: usize) -> Option<Box<dyn Any + Send>> {
        std::panic::catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: forwarded precondition — ctx is the live context
            // `call` was instantiated for.
            unsafe { (self.call)(self.ctx, index) }
        }))
        .err()
    }
}

/// The queue shared by all pool threads of one [`WorkerPool`].
struct Shared {
    queue: Mutex<PoolQueue>,
    /// Signals pool threads that the queue became non-empty (or shutdown).
    work_ready: Condvar,
}

struct PoolQueue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// A persistent pool of parked worker threads (see the module docs).
///
/// The suite shares one [`WorkerPool::global`] instance by default;
/// dedicated pools can be created for tests or embedding scenarios and
/// are shut down (threads joined) on drop.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// OS threads spawned so far; grows lazily toward the demand, capped.
    spawned: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let threads = self.spawned.lock().map(|v| v.len()).unwrap_or(0);
        f.debug_struct("WorkerPool").field("threads", &threads).finish()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// An empty pool; threads are spawned lazily as batches demand them.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shared: Arc::new(Shared {
                queue: Mutex::new(PoolQueue { jobs: VecDeque::new(), shutdown: false }),
                work_ready: Condvar::new(),
            }),
            spawned: Mutex::new(Vec::new()),
        }
    }

    /// The process-wide pool every engine uses unless a dedicated pool is
    /// supplied (e.g. via `ValmodConfig::with_pool` in `valmod-core`).
    /// Created on first use and never shut down.
    #[must_use]
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(WorkerPool::new)
    }

    /// Number of OS threads currently alive in this pool.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.spawned.lock().map(|v| v.len()).unwrap_or(0)
    }

    /// Ensures at least `target` pool threads exist (capped), so a batch
    /// of `target + 1` workers can run fully concurrently (the submitter
    /// is the `+ 1`).
    fn ensure_threads(&self, target: usize) {
        let target = target.min(MAX_POOL_THREADS);
        let mut spawned = self.spawned.lock().expect("pool spawn registry poisoned");
        while spawned.len() < target {
            let shared = Arc::clone(&self.shared);
            let id = spawned.len();
            let handle = std::thread::Builder::new()
                .name(format!("valmod-pool-{id}"))
                .spawn(move || pool_thread(&shared))
                .expect("spawn pool thread");
            spawned.push(handle);
        }
    }

    /// Runs `worker(0) .. worker(num_workers − 1)` and returns the results
    /// in worker-index order — the pool-backed replacement for spawning
    /// `num_workers` scoped threads. A single worker runs inline with no
    /// synchronization; otherwise worker 0 runs on the submitting thread
    /// while the rest are dispatched to (and helped along with) the pool.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic's original payload on the
    /// submitting thread if any worker panicked (the pool threads
    /// themselves survive).
    pub fn run<R: Send, F: Fn(usize) -> R + Sync>(&self, num_workers: usize, worker: F) -> Vec<R> {
        if num_workers <= 1 {
            return vec![worker(0)];
        }
        let _run_span = obs::span("pool_run", obs::Layer::Pool);
        self.ensure_threads(num_workers - 1);

        /// Disjoint-by-index result slots shared across workers.
        struct Slots<R>(Vec<UnsafeCell<Option<R>>>);
        // SAFETY: each worker index writes only its own slot; indices are
        // distinct per batch, so access is disjoint.
        unsafe impl<R: Send> Sync for Slots<R> {}

        struct Ctx<'a, R, F> {
            worker: &'a F,
            slots: &'a Slots<R>,
        }

        /// The typed trampoline `BatchState.call` points at.
        ///
        /// # Safety
        ///
        /// `ctx` must point at a live `Ctx<R, F>` whose slots have at
        /// least `index + 1` entries and whose `index` slot is not
        /// accessed concurrently.
        unsafe fn trampoline<R: Send, F: Fn(usize) -> R + Sync>(ctx: *const (), index: usize) {
            // SAFETY: forwarded precondition.
            let ctx = unsafe { &*ctx.cast::<Ctx<'_, R, F>>() };
            let result = (ctx.worker)(index);
            // SAFETY: slot `index` is written by exactly this job.
            unsafe { *ctx.slots.0[index].get() = Some(result) };
        }

        let slots = Slots((0..num_workers).map(|_| UnsafeCell::new(None)).collect());
        let ctx = Ctx { worker: &worker, slots: &slots };
        let latch = Latch::new(num_workers);
        let batch = BatchState { call: trampoline::<R, F>, ctx: std::ptr::addr_of!(ctx).cast() };

        // Enqueue workers 1..n, wake the pool, run worker 0 here.
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            for index in 1..num_workers {
                queue.jobs.push_back(Job { batch: &batch, latch: Arc::clone(&latch), index });
            }
        }
        obs::count!(pool_submits, num_workers as u64 - 1);
        obs::metrics().pool_queue_depth.add(num_workers as i64 - 1);
        self.shared.work_ready.notify_all();
        let panic0 = unsafe {
            // SAFETY: `batch` is alive (it is on this stack frame) and we
            // do not return before the latch reaches zero below.
            batch.run_worker(0)
        };
        latch.count_down(panic0);

        // Help drain the queue (our jobs, or concurrent batches' while
        // ours is in flight) until our batch completes, then join. Our own
        // queued jobs can only leave the queue by being executed, so an
        // empty queue means they are all running or done — waiting is
        // then deadlock-free.
        if let Some(payload) = self.help_until(&latch) {
            std::panic::resume_unwind(payload);
        }

        slots
            .0
            .into_iter()
            .map(|slot| slot.into_inner().expect("every worker index ran exactly once"))
            .collect()
    }

    /// Opens a submission scope on this pool: inside `f`, batches can be
    /// submitted *without blocking* via [`PoolScope::submit`] and waited
    /// via the returned [`BatchHandle`]s, concurrently with ordinary
    /// blocking [`WorkerPool::run`]/[`WorkerPool::for_each_mut`] batches on
    /// the same pool.
    ///
    /// The scope is what makes the non-blocking API sound with
    /// stack-borrowed jobs: every batch submitted inside `f` is guaranteed
    /// to have finished when `scope` returns — normally because its handle
    /// was waited or dropped, and otherwise (a handle leaked with
    /// `mem::forget`, or `f` unwinding past unwaited handles) because the
    /// scope itself drains the leftover latches before returning, exactly
    /// like [`std::thread::scope`] joins its spawned threads. A leaked
    /// handle leaks its heap-pinned batch context (so in-flight jobs never
    /// dangle), never its borrows.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic of any batch that was neither
    /// waited nor dropped inside `f` (waited/dropped handles re-raise at
    /// their own site), after `f`'s own panic if both happen.
    pub fn scope<'env, T>(&self, f: impl for<'p> FnOnce(&PoolScope<'p, 'env>) -> T) -> T {
        let scope = PoolScope {
            pool: self,
            pending: Mutex::new(Vec::new()),
            env: PhantomData,
            scope: PhantomData,
        };
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Every batch submitted in this scope must complete before the
        // borrowed environment can die with this frame.
        let leftover = scope.drain_pending();
        match result {
            Err(panic) => std::panic::resume_unwind(panic),
            Ok(value) => {
                if let Some(panic) = leftover {
                    std::panic::resume_unwind(panic);
                }
                value
            }
        }
    }

    /// The help-then-join loop shared by every waiter of a batch `latch`:
    /// drain queued jobs (our own, or concurrent batches' while ours is in
    /// flight) until the latch completes, then block on it. Returns the
    /// batch's first panic payload, if any.
    fn help_until(&self, latch: &Latch) -> Option<Box<dyn Any + Send>> {
        while !latch.is_done() {
            let job = {
                let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
                queue.jobs.pop_front()
            };
            match job {
                // SAFETY: every queued job's batch is kept alive by its own
                // submitter (or submitting scope) blocking exactly as we do
                // here until the job's latch counts down.
                Some(job) => {
                    // A job drained by a *waiter* rather than a pool thread
                    // is the helping-submitter steal the module docs
                    // describe.
                    obs::metrics().pool_queue_depth.add(-1);
                    obs::count!(pool_steals, 1);
                    unsafe { job.execute() }
                }
                None => break,
            }
        }
        latch.join()
    }

    /// Splits `out` into `workers` contiguous chunks and fills every
    /// element via `f(global_index, &mut element)` — the pool-backed
    /// replacement for the per-phase `std::thread::scope` chunking loops.
    /// Results are independent of the chunking by construction: each
    /// element's update depends only on its own index.
    pub fn for_each_mut<T: Send>(
        &self,
        out: &mut [T],
        workers: usize,
        f: impl Fn(usize, &mut T) + Sync,
    ) {
        if workers <= 1 || out.len() <= 1 {
            for (i, v) in out.iter_mut().enumerate() {
                f(i, v);
            }
            return;
        }
        let chunk = out.len().div_ceil(workers);
        // Hand each worker exclusive access to its chunk through a Mutex;
        // the lock is uncontended (each worker index takes its own chunk
        // exactly once) and costs one acquisition per chunk per batch.
        let chunks: Vec<Mutex<(usize, &mut [T])>> = out
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, data)| Mutex::new((ci * chunk, data)))
            .collect();
        self.run(chunks.len(), |w| {
            let mut guard = chunks[w].lock().expect("chunk lock poisoned");
            let (base, data) = &mut *guard;
            for (off, v) in data.iter_mut().enumerate() {
                f(*base + off, v);
            }
        });
    }
}

/// A submission scope opened by [`WorkerPool::scope`]. Lives on the
/// opening thread's stack; [`PoolScope::submit`] enqueues batches without
/// blocking and the scope guarantees they all finish before `scope`
/// returns. The two lifetimes mirror [`std::thread::Scope`]: `'p` is the
/// scope itself, `'env` the borrowed environment jobs may capture
/// (invariant, so a submitted closure can never smuggle in a shorter
/// borrow than the scope will wait for).
pub struct PoolScope<'p, 'env: 'p> {
    pool: &'p WorkerPool,
    /// Latches of every batch submitted in this scope, drained at scope
    /// exit so leaked/unwaited handles still complete before `'env` dies.
    pending: Mutex<Vec<Arc<Latch>>>,
    scope: PhantomData<&'p mut &'p ()>,
    env: PhantomData<&'env mut &'env ()>,
}

impl<'p, 'env> PoolScope<'p, 'env> {
    /// Enqueues `worker(0) .. worker(num_workers − 1)` on the pool and
    /// returns immediately with a waitable [`BatchHandle`] — the
    /// non-blocking counterpart of [`WorkerPool::run`]. The submitting
    /// thread runs *none* of the jobs at submit time (that is the point:
    /// it is free to run a different batch, or direct work, concurrently);
    /// it helps drain the queue once it waits on the handle.
    ///
    /// Results are collected per worker index exactly as in
    /// [`WorkerPool::run`], so a submitted batch returns byte-identical
    /// results to a blocking run of the same worker function — which pool
    /// thread executes a job is invisible.
    pub fn submit<R, F>(&self, num_workers: usize, worker: F) -> BatchHandle<'p, R>
    where
        R: Send + 'env,
        F: Fn(usize) -> R + Sync + 'env,
    {
        let num_workers = num_workers.max(1);
        // All jobs go to the pool; without `+ 1` the submitter could find
        // every pool thread busy with its *other* (blocking) batch.
        self.pool.ensure_threads(num_workers);

        let ctx = Box::new(SubmitCtx {
            worker,
            slots: (0..num_workers).map(|_| UnsafeCell::new(None)).collect::<Vec<_>>(),
        });
        let state = Box::new(BatchState {
            call: submit_trampoline::<R, F>,
            ctx: std::ptr::from_ref::<SubmitCtx<R, F>>(&ctx).cast(),
        });
        let latch = Latch::new(num_workers);
        {
            let mut queue = self.pool.shared.queue.lock().expect("pool queue poisoned");
            for index in 0..num_workers {
                queue.jobs.push_back(Job {
                    batch: std::ptr::from_ref::<BatchState>(&state),
                    latch: Arc::clone(&latch),
                    index,
                });
            }
        }
        obs::count!(pool_submits, num_workers as u64);
        obs::metrics().pool_queue_depth.add(num_workers as i64);
        self.pool.shared.work_ready.notify_all();
        self.pending.lock().expect("scope registry poisoned").push(Arc::clone(&latch));
        BatchHandle { pool: self.pool, latch, _state: state, ctx, done: false }
    }

    /// Joins every batch submitted in this scope whose handle did not
    /// already join it (leaked or dropped-during-unwind handles), helping
    /// drain the queue so completion never depends on pool-thread count.
    /// Returns the first unclaimed panic payload.
    fn drain_pending(&self) -> Option<Box<dyn Any + Send>> {
        let latches = std::mem::take(&mut *self.pending.lock().expect("scope registry poisoned"));
        let mut first_panic = None;
        for latch in latches {
            let panic = self.pool.help_until(&latch);
            if first_panic.is_none() {
                first_panic = panic;
            }
        }
        first_panic
    }
}

/// The typed context of one submitted batch: the worker closure plus one
/// result slot per worker index, heap-pinned for the batch duration by the
/// owning [`BatchHandle`] (or leaked with it — never freed early).
struct SubmitCtx<R, F> {
    worker: F,
    slots: Vec<UnsafeCell<Option<R>>>,
}

// SAFETY: jobs on several pool threads share the context; the closure is
// `Sync` by bound, and each worker index writes only its own slot.
unsafe impl<R: Send, F: Sync> Sync for SubmitCtx<R, F> {}

/// Typed view a [`BatchHandle`] keeps of its context once `R` is all it
/// needs to know (the worker type is erased behind the box).
trait ResultSlots<R> {
    /// Drains the filled slots in worker-index order. Callable only after
    /// the batch latch reached zero.
    fn take_results(&mut self) -> Vec<R>;
}

impl<R: Send, F> ResultSlots<R> for SubmitCtx<R, F> {
    fn take_results(&mut self) -> Vec<R> {
        std::mem::take(&mut self.slots)
            .into_iter()
            .map(|slot| slot.into_inner().expect("every worker index ran exactly once"))
            .collect()
    }
}

/// The typed trampoline a submitted batch's [`BatchState`] points at.
///
/// # Safety
///
/// `ctx` must point at a live `SubmitCtx<R, F>` with at least `index + 1`
/// slots whose `index` slot is not accessed concurrently — guaranteed by
/// the handle/scope keeping the context boxed until the latch is drained,
/// and by worker indices being unique per batch.
unsafe fn submit_trampoline<R: Send, F: Fn(usize) -> R + Sync>(ctx: *const (), index: usize) {
    // SAFETY: forwarded precondition.
    let ctx = unsafe { &*ctx.cast::<SubmitCtx<R, F>>() };
    let result = (ctx.worker)(index);
    // SAFETY: slot `index` is written by exactly this job.
    unsafe { *ctx.slots[index].get() = Some(result) };
}

/// A batch in flight, returned by [`PoolScope::submit`]. Waitable
/// ([`BatchHandle::wait`] helps drain the pool queue, joins the batch's
/// latch, and returns the results in worker order); dropping the handle
/// joins the batch without collecting results. The handle owns the
/// heap-pinned batch state the queued jobs point into, which is why
/// leaking it leaks memory but never dangles a job.
pub struct BatchHandle<'p, R: Send> {
    pool: &'p WorkerPool,
    latch: Arc<Latch>,
    /// Keeps the type-erased batch descriptor the queued `Job`s point at
    /// alive (and address-stable) until the latch confirms completion.
    _state: Box<BatchState>,
    ctx: Box<dyn ResultSlots<R> + 'p>,
    done: bool,
}

impl<R: Send> std::fmt::Debug for BatchHandle<'_, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchHandle").field("complete", &self.latch.is_done()).finish()
    }
}

impl<R: Send> BatchHandle<'_, R> {
    /// Whether every job of the batch has already finished (non-blocking).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.latch.is_done()
    }

    /// Blocks until the batch completes — helping drain the pool queue,
    /// exactly like a blocking [`WorkerPool::run`] would from this point —
    /// and returns the results in worker-index order.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic's original payload, as
    /// [`WorkerPool::run`] does.
    pub fn wait(mut self) -> Vec<R> {
        let panic = self.pool.help_until(&self.latch);
        self.done = true;
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        self.ctx.take_results()
    }
}

impl<R: Send> Drop for BatchHandle<'_, R> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // An abandoned handle still joins its batch (the jobs borrow the
        // environment), and a worker panic must not vanish silently — it
        // re-raises here unless this drop is itself part of an unwind.
        let panic = self.pool.help_until(&self.latch);
        if let Some(payload) = panic {
            if !std::thread::panicking() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            queue.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        let handles = std::mem::take(&mut *self.spawned.lock().expect("pool registry poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// A pool thread's life: park on the condvar until a job (or shutdown)
/// arrives, execute, repeat. Parking is a real `Condvar::wait` — no
/// spinning — which the idle test below verifies via the OS.
fn pool_thread(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    obs::metrics().pool_queue_depth.add(-1);
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                // One park/unpark transition per condvar round trip; the
                // counters are relaxed atomics, so the idle-parking test
                // (which watches CPU ticks via /proc) is unaffected.
                obs::count!(pool_parks, 1);
                queue = shared.work_ready.wait(queue).expect("pool queue poisoned");
                obs::count!(pool_unparks, 1);
            }
        };
        // SAFETY: the job's submitting `run` frame is blocked on the batch
        // latch until this (and every) job of the batch completes, keeping
        // the batch state and its borrows alive.
        unsafe { job.execute() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_worker_order() {
        let pool = WorkerPool::new();
        for workers in [1usize, 2, 3, 8, 17] {
            let got = pool.run(workers, |w| w * 10);
            let want: Vec<usize> = (0..workers).map(|w| w * 10).collect();
            assert_eq!(got, want, "at {workers} workers");
        }
    }

    #[test]
    fn reused_pool_matches_scoped_spawn() {
        // The pool is a drop-in for scoped spawning: same worker function,
        // same results, across many reuses of one pool.
        let pool = WorkerPool::new();
        let work = |w: usize| -> u64 { (0..10_000u64).map(|x| x.wrapping_mul(w as u64 + 1)).sum() };
        for round in 0..20 {
            let workers = 1 + round % 8;
            let scoped: Vec<u64> = {
                let mut results = Vec::new();
                std::thread::scope(|scope| {
                    let handles: Vec<_> =
                        (0..workers).map(|w| scope.spawn(move || work(w))).collect();
                    for h in handles {
                        results.push(h.join().unwrap());
                    }
                });
                results
            };
            assert_eq!(pool.run(workers, work), scoped, "round {round}");
        }
    }

    #[test]
    fn for_each_mut_fills_every_index() {
        let pool = WorkerPool::new();
        for workers in [1usize, 2, 3, 8] {
            let mut data = vec![0usize; 103];
            pool.for_each_mut(&mut data, workers, |i, v| *v = i * i);
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i * i, "index {i} at {workers} workers");
            }
        }
    }

    #[test]
    fn oversubscribed_batches_complete() {
        // More logical workers than pool threads: the caller helps, so the
        // batch completes even though the pool never grows past the cap.
        let pool = WorkerPool::new();
        let results = pool.run(40, |w| w);
        assert_eq!(results.len(), 40);
        assert!(results.iter().enumerate().all(|(i, &w)| i == w));
    }

    #[test]
    fn worker_panics_propagate_and_pool_survives() {
        let pool = WorkerPool::new();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, |w| {
                assert!(w != 2, "worker 2 exploding");
                w
            })
        }));
        // The original payload (not a generic wrapper) reaches the
        // submitter, so assertion messages from deep in a kernel survive.
        let payload = outcome.expect_err("panic must propagate to the submitter");
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string payload>");
        assert!(msg.contains("worker 2 exploding"), "payload was: {msg}");
        // The pool threads survived and serve the next batch normally.
        assert_eq!(pool.run(4, |w| w + 1), vec![1, 2, 3, 4]);
    }

    #[test]
    fn concurrent_batches_from_many_threads_interleave_safely() {
        let pool = Arc::new(WorkerPool::new());
        std::thread::scope(|scope| {
            for t in 0..6usize {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for round in 0..10 {
                        let base = t * 1000 + round;
                        let got = pool.run(3, move |w| base + w);
                        assert_eq!(got, vec![base, base + 1, base + 2]);
                    }
                });
            }
        });
    }

    #[test]
    fn submitted_batch_matches_blocking_run() {
        let pool = WorkerPool::new();
        let work = |w: usize| -> u64 { (0..5_000u64).map(|x| x.rotate_left(w as u32)).sum() };
        for workers in [1usize, 2, 3, 8, 19] {
            let blocking = pool.run(workers, work);
            let submitted = pool.scope(|s| s.submit(workers, work).wait());
            assert_eq!(blocking, submitted, "at {workers} workers");
        }
    }

    #[test]
    fn two_batches_overlap_on_one_pool() {
        // The pipelining contract: a submitted batch makes progress while
        // the submitter runs a *blocking* batch on the same pool, and both
        // come back correct. The submitted batch blocks on a channel the
        // blocking batch releases, so completion proves true concurrency
        // (a deferred-until-wait execution would deadlock here, which the
        // timeout turns into a failure).
        let pool = WorkerPool::new();
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let rx = Mutex::new(rx);
        pool.scope(|s| {
            let handle = s.submit(1, |_| {
                rx.lock().unwrap().recv_timeout(std::time::Duration::from_secs(10)).is_ok()
            });
            let blocking = pool.run(2, |w| {
                if w == 0 {
                    tx.send(()).unwrap();
                }
                w * 3
            });
            assert_eq!(blocking, vec![0, 3]);
            assert_eq!(handle.wait(), vec![true]);
        });
    }

    #[test]
    fn dropped_handle_joins_its_batch() {
        let pool = WorkerPool::new();
        let ran = std::sync::atomic::AtomicUsize::new(0);
        pool.scope(|s| {
            let _ = s.submit(5, |_| {
                ran.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
            // Handle dropped here without wait(); drop must join.
        });
        assert_eq!(ran.load(std::sync::atomic::Ordering::Relaxed), 5);
    }

    #[test]
    fn leaked_handle_is_drained_by_the_scope() {
        // `mem::forget` on the handle must not let jobs outlive the scope
        // (they borrow `ran` from this frame): the scope's exit drain picks
        // the latch up. The leaked batch context is the price — memory, not
        // soundness.
        let pool = WorkerPool::new();
        let ran = std::sync::atomic::AtomicUsize::new(0);
        pool.scope(|s| {
            let handle = s.submit(4, |_| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                ran.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
            std::mem::forget(handle);
        });
        assert_eq!(ran.load(std::sync::atomic::Ordering::Relaxed), 4);
    }

    #[test]
    fn submitted_batch_panics_propagate_at_wait() {
        let pool = WorkerPool::new();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                let handle = s.submit(3, |w| {
                    assert!(w != 1, "submitted worker 1 exploding");
                    w
                });
                handle.wait()
            })
        }));
        let payload = outcome.expect_err("panic must reach the waiter");
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string payload>");
        assert!(msg.contains("submitted worker 1 exploding"), "payload was: {msg}");
        // The pool survives for the next batch.
        assert_eq!(pool.run(2, |w| w), vec![0, 1]);
    }

    #[test]
    fn many_interleaved_submissions_stay_ordered() {
        // Several batches in flight at once on one pool, waited out of
        // submission order — results must still come back per batch in
        // worker-index order.
        let pool = WorkerPool::new();
        pool.scope(|s| {
            let handles: Vec<_> = (0..6usize).map(|b| s.submit(3, move |w| b * 100 + w)).collect();
            for (b, handle) in handles.into_iter().enumerate().rev() {
                assert_eq!(handle.wait(), vec![b * 100, b * 100 + 1, b * 100 + 2]);
            }
        });
    }

    /// Reads `(state, utime + stime ticks)` of every thread of this
    /// process whose name starts with `valmod-pool`.
    #[cfg(target_os = "linux")]
    fn pool_thread_stats() -> Vec<(char, u64)> {
        let mut stats = Vec::new();
        let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
            return stats;
        };
        for task in tasks.flatten() {
            let Ok(stat) = std::fs::read_to_string(task.path().join("stat")) else {
                continue;
            };
            // Format: pid (comm) state utime=14th stime=15th ...; comm may
            // contain spaces, so split at the closing paren.
            let Some(close) = stat.rfind(')') else { continue };
            let Some(open) = stat.find('(') else { continue };
            if !stat[open + 1..close].starts_with("valmod-pool") {
                continue;
            }
            let rest: Vec<&str> = stat[close + 2..].split_whitespace().collect();
            let state = rest.first().and_then(|s| s.chars().next()).unwrap_or('?');
            let utime: u64 = rest.get(11).and_then(|s| s.parse().ok()).unwrap_or(0);
            let stime: u64 = rest.get(12).and_then(|s| s.parse().ok()).unwrap_or(0);
            stats.push((state, utime + stime));
        }
        stats
    }

    /// The satellite requirement: idle pool threads must truly park (block
    /// in `Condvar::wait`), not busy-spin. Verified against the OS: after
    /// a bounded settling window, every pool thread is in state `S`
    /// (interruptible sleep) and its CPU-tick counters stop advancing.
    #[test]
    #[cfg(target_os = "linux")]
    fn idle_pool_threads_park_without_spinning() {
        let pool = WorkerPool::new();
        // Force threads into existence, then go idle.
        assert_eq!(pool.run(4, |w| w).len(), 4);
        assert!(pool.threads() >= 3);

        // Time-bounded: wait up to 2 s for all pool threads to reach S.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        let mut settled = pool_thread_stats();
        while settled.iter().any(|&(state, _)| state != 'S') {
            assert!(std::time::Instant::now() < deadline, "pool threads never parked: {settled:?}");
            std::thread::sleep(std::time::Duration::from_millis(20));
            settled = pool_thread_stats();
        }
        let before: u64 = settled.iter().map(|&(_, ticks)| ticks).sum();

        // A spinning thread burns ~1 tick / 10 ms; over 300 ms of enforced
        // idleness, 3+ spinners would rack up ~90 ticks. Parked threads
        // accrue none.
        std::thread::sleep(std::time::Duration::from_millis(300));
        let after_stats = pool_thread_stats();
        let after: u64 = after_stats.iter().map(|&(_, ticks)| ticks).sum();
        assert!(after_stats.iter().all(|&(state, _)| state == 'S'), "woke up: {after_stats:?}");
        assert!(
            after - before <= 2,
            "idle pool threads consumed CPU: {before} -> {after} ticks ({after_stats:?})"
        );
    }
}
