//! A persistent worker pool for the suite's scoped fork/join parallelism.
//!
//! Every parallel phase in the suite — VALMOD's stage-1 diagonal walk, the
//! stage-2 per-row chunks, the discord classification loops, STOMP's
//! parallel fold, and the streaming engine's per-length appends — has the
//! same shape: split a batch of independent work across `w` logical
//! workers, run `worker(0) .. worker(w − 1)`, and join. The previous
//! implementation spawned fresh OS threads per phase with
//! [`std::thread::scope`]; at ~10–50 µs per spawn that overhead is paid
//! once per *phase per length*, which on wide length ranges with small `ℓ`
//! rivals the work itself. [`WorkerPool`] keeps the threads alive instead:
//! they park on a condition variable between batches, so dispatching a
//! batch costs one lock + wake instead of `w` thread spawns.
//!
//! # Execution model
//!
//! A batch submitted via [`WorkerPool::run`] pushes its jobs onto a shared
//! queue and then the *submitting thread helps drain the queue* until its
//! own batch completes (it may execute jobs of concurrent batches while
//! its own jobs are in flight, but stops helping once its batch is done).
//! [`PoolScope::submit`] is the non-blocking variant: it enqueues a batch
//! and returns a waitable [`BatchHandle`] immediately, so one thread can
//! keep two batches in flight on the same pool — the software-pipelining
//! primitive behind VALMOD's overlapped stage 2 (the dot-product advance
//! of length ℓ+1 runs while length ℓ classifies).
//! Two consequences:
//!
//! * the pool can never deadlock, even when a batch asks for more workers
//!   than there are pool threads (the caller executes the surplus), and
//!   even if jobs from several concurrent batches interleave;
//! * a single-worker batch runs entirely inline — the serial path pays no
//!   synchronization at all, as the pre-pool scoped-spawn helper
//!   guaranteed.
//!
//! # Determinism
//!
//! The pool adds no ordering of its own: a batch's results are collected
//! into a slot per worker index, so [`WorkerPool::run`] returns exactly
//! what `(0..w).map(worker).collect()` would — *which* thread ran a worker
//! index is invisible. Every engine built on the pool therefore keeps its
//! bit-identical-across-thread-counts property; the equality proptests in
//! `valmod-core` and `valmod-stream` exercise precisely this, on reused
//! pools.
//!
//! # Safety
//!
//! Jobs borrow the submitting thread's stack (the worker closure and the
//! result slots). The pool erases those lifetimes to move jobs across
//! threads, which is sound because [`WorkerPool::run`] does not return
//! until every job of its batch has finished (a latch counts them down,
//! and panics count too) — the same argument `std::thread::scope` makes.
//! Completion is published *under the latch mutex* ([`Latch::count_down`]
//! decrements and notifies while holding the guard), so every access a
//! worker makes to the stack-borrowed batch state happens-before the
//! submitter can observe `remaining == 0` and destroy it. The latch
//! itself lives in an [`Arc`] owned by each job — not on the submitter's
//! stack — so the finishing worker's final mutex unlock and condvar wake
//! touch memory that outlives the `run` frame (the same reason
//! `std::thread::scope` arc-allocates its `ScopeData`). All `unsafe` here
//! is confined to the lifetime erasure and to writing disjoint result
//! slots.

#![deny(unsafe_op_in_unsafe_fn)]

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use valmod_obs as obs;

/// Upper bound on OS threads a pool will ever spawn. Batches may request
/// more logical workers than this; the surplus jobs are executed by the
/// pool threads and the helping caller, so results never depend on it.
const MAX_POOL_THREADS: usize = 256;

/// The completion latch of one batch, heap-allocated behind an [`Arc`] so
/// the memory the finishing worker's last unlock/wake touches outlives the
/// submitting `run` frame. Every queued [`Job`] owns a clone; the
/// submitter owns one too.
struct Latch {
    inner: Mutex<LatchInner>,
    /// Wakes the submitter when `remaining` hits zero.
    done: Condvar,
}

struct LatchInner {
    /// Jobs not yet finished (including inline and helped ones).
    remaining: usize,
    /// First worker panic payload; the submitter re-raises it after join.
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new(jobs: usize) -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(LatchInner { remaining: jobs, panic: None }),
            done: Condvar::new(),
        })
    }

    /// Counts one job done, keeping the first panic payload, and wakes the
    /// submitter when the count hits zero. Decrementing and notifying
    /// under the mutex is what makes destroying the batch state sound: the
    /// submitter can only observe `remaining == 0` through this same
    /// mutex, so every prior access the worker made to the stack-borrowed
    /// batch happens-before that observation.
    fn count_down(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut inner = self.inner.lock().expect("batch latch poisoned");
        if inner.panic.is_none() {
            inner.panic = panic;
        }
        inner.remaining -= 1;
        if inner.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Whether every job of the batch has finished (non-blocking).
    fn is_done(&self) -> bool {
        self.inner.lock().expect("batch latch poisoned").remaining == 0
    }

    /// Blocks until every job of the batch has finished; returns the first
    /// panic payload, if any worker panicked.
    fn join(&self) -> Option<Box<dyn Any + Send>> {
        let mut inner = self.inner.lock().expect("batch latch poisoned");
        while inner.remaining > 0 {
            inner = self.done.wait(inner).expect("batch latch poisoned");
        }
        inner.panic.take()
    }
}

/// One queued unit of work: worker index `index` of the batch at `batch`,
/// plus an owned handle on that batch's completion latch.
///
/// The raw pointer is lifetime-erased; see the module docs for why the
/// batch (and everything it borrows) outlives the job. The latch is
/// `Arc`-owned precisely because it must *not* rely on that argument: it
/// is the thing the worker touches last, after which the batch may die.
struct Job {
    batch: *const BatchState,
    latch: Arc<Latch>,
    index: usize,
}

// SAFETY: a `Job`'s `batch` pointer is only ever dereferenced before its
// latch is counted down, while the submitting `WorkerPool::run` frame is
// blocked waiting on that latch, which keeps the pointed-to `BatchState`
// (and the closure/slots it references) alive; the shared state it
// reaches is `Sync` (`&(dyn Fn + Sync)` and disjoint-by-index result
// slots), and `Arc<Latch>` is `Send` on its own.
unsafe impl Send for Job {}

impl Job {
    /// Runs the job's worker and counts the latch down, recording panics.
    /// After this returns, the job's batch may no longer exist.
    ///
    /// # Safety
    ///
    /// `self.batch` must still point at the batch's live state —
    /// guaranteed while the submitting `run` frame waits on the latch.
    unsafe fn execute(self) {
        // SAFETY: forwarded precondition; the latch has not been counted
        // down yet, so the batch is alive.
        let panic = unsafe { (*self.batch).run_worker(self.index) };
        // Last access: heap memory owned by `self.latch`, not the batch.
        self.latch.count_down(panic);
    }
}

/// Per-batch shared state: the type-erased worker call. Lives on the
/// submitting thread's stack for the batch duration.
struct BatchState {
    /// Runs worker `index`; type-erased so the queue holds one job type.
    /// The `*const ()` is the batch's typed context (closure + slots).
    call: unsafe fn(*const (), usize),
    ctx: *const (),
}

impl BatchState {
    /// Runs worker `index`, returning the panic payload if it panicked.
    ///
    /// # Safety
    ///
    /// `self.ctx` must still point at the batch's live typed context —
    /// guaranteed while the submitting `run` frame waits on the latch.
    unsafe fn run_worker(&self, index: usize) -> Option<Box<dyn Any + Send>> {
        std::panic::catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: forwarded precondition — ctx is the live context
            // `call` was instantiated for.
            unsafe { (self.call)(self.ctx, index) }
        }))
        .err()
    }
}

/// The queue shared by all pool threads of one [`WorkerPool`].
struct Shared {
    queue: Mutex<PoolQueue>,
    /// Signals pool threads that the queue became non-empty (or shutdown).
    work_ready: Condvar,
    /// Monotone id source for [`WorkerPool::lane`] registrations.
    next_lane_id: AtomicU64,
}

/// When both priority classes have queued work, how often the scheduler
/// *must* pick a bulk job: at least one bulk pick in every
/// `BULK_SERVICE_STRIDE` consecutive picks. This is the pool's starvation
/// bound — see [`WorkerPool::lane`].
const BULK_SERVICE_STRIDE: u32 = 4;

/// One registered submission lane: a private FIFO of jobs drained by the
/// fair scheduler in [`PoolQueue::next_job`].
struct LaneQueue {
    id: u64,
    priority: LanePriority,
    jobs: VecDeque<Job>,
}

/// All queued work of one pool: the anonymous default FIFO (batches
/// submitted outside any lane) plus the registered lanes, drained under
/// the fair-scheduling policy documented on [`WorkerPool::lane`].
struct PoolQueue {
    /// The default queue — anonymous submissions; scheduled as one more
    /// bulk-class source so lane-less callers keep their FIFO behavior.
    jobs: VecDeque<Job>,
    lanes: Vec<LaneQueue>,
    /// Round-robin cursors, one per priority class.
    rr: [usize; 2],
    /// Consecutive interactive picks made while bulk work was waiting;
    /// reset on every bulk pick. Bounds starvation to
    /// `BULK_SERVICE_STRIDE − 1` picks.
    contended_interactive_picks: u32,
    shutdown: bool,
}

/// Sentinel lane position for the default queue in the bulk round-robin.
const DEFAULT_SLOT: usize = usize::MAX;

impl PoolQueue {
    fn lane_pos(&self, id: u64) -> Option<usize> {
        self.lanes.iter().position(|l| l.id == id)
    }

    /// Enqueues one job, into the given lane if it is still registered
    /// (else the default queue — a closed lane never loses work).
    fn push_routed(&mut self, lane: Option<u64>, job: Job) {
        match lane.and_then(|id| self.lane_pos(id)) {
            Some(pos) => self.lanes[pos].jobs.push_back(job),
            None => self.jobs.push_back(job),
        }
    }

    fn class_has_work(&self, class: usize) -> bool {
        self.lanes.iter().any(|l| l.priority.class() == class && !l.jobs.is_empty())
            || (class == 1 && !self.jobs.is_empty())
    }

    /// The fair pick (see [`WorkerPool::lane`] for the policy): choose a
    /// priority class — interactive first, but bulk is guaranteed at least
    /// one pick in every `BULK_SERVICE_STRIDE` when both classes wait —
    /// then rotate round-robin over that class's non-empty sources.
    fn next_job(&mut self) -> Option<Job> {
        let interactive = self.class_has_work(0);
        let bulk = self.class_has_work(1);
        let class = match (interactive, bulk) {
            (false, false) => return None,
            (true, false) => 0,
            (false, true) => 1,
            (true, true) => {
                if self.contended_interactive_picks + 1 >= BULK_SERVICE_STRIDE {
                    1
                } else {
                    0
                }
            }
        };
        if class == 0 {
            // Only contended picks count toward the starvation bound.
            self.contended_interactive_picks =
                if bulk { self.contended_interactive_picks + 1 } else { 0 };
        } else {
            self.contended_interactive_picks = 0;
        }
        // Non-empty sources of the class, in registration order; the
        // default queue is one more bulk-class source.
        let mut sources: Vec<usize> = self
            .lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| l.priority.class() == class && !l.jobs.is_empty())
            .map(|(pos, _)| pos)
            .collect();
        if class == 1 && !self.jobs.is_empty() {
            sources.push(DEFAULT_SLOT);
        }
        let pick = sources[self.rr[class] % sources.len()];
        self.rr[class] = self.rr[class].wrapping_add(1);
        let job = match pick {
            DEFAULT_SLOT => self.jobs.pop_front(),
            pos => self.lanes[pos].jobs.pop_front(),
        };
        debug_assert!(job.is_some(), "picked source was non-empty under the lock");
        job
    }
}

/// A persistent pool of parked worker threads (see the module docs).
///
/// The suite shares one [`WorkerPool::global`] instance by default;
/// dedicated pools can be created for tests or embedding scenarios and
/// are shut down (threads joined) on drop.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// OS threads spawned so far; grows lazily toward the demand, capped.
    spawned: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let threads = self.spawned.lock().map(|v| v.len()).unwrap_or(0);
        f.debug_struct("WorkerPool").field("threads", &threads).finish()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// An empty pool; threads are spawned lazily as batches demand them.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shared: Arc::new(Shared {
                queue: Mutex::new(PoolQueue {
                    jobs: VecDeque::new(),
                    lanes: Vec::new(),
                    rr: [0, 0],
                    contended_interactive_picks: 0,
                    shutdown: false,
                }),
                work_ready: Condvar::new(),
                next_lane_id: AtomicU64::new(0),
            }),
            spawned: Mutex::new(Vec::new()),
        }
    }

    /// The process-wide pool every engine uses unless a dedicated pool is
    /// supplied (e.g. via `ValmodConfig::with_pool` in `valmod-core`).
    /// Created on first use and never shut down.
    #[must_use]
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(WorkerPool::new)
    }

    /// Number of OS threads currently alive in this pool.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.spawned.lock().map(|v| v.len()).unwrap_or(0)
    }

    /// Ensures at least `target` pool threads exist (capped), so a batch
    /// of `target + 1` workers can run fully concurrently (the submitter
    /// is the `+ 1`).
    fn ensure_threads(&self, target: usize) {
        let target = target.min(MAX_POOL_THREADS);
        let mut spawned = self.spawned.lock().expect("pool spawn registry poisoned");
        while spawned.len() < target {
            let shared = Arc::clone(&self.shared);
            let id = spawned.len();
            let handle = std::thread::Builder::new()
                .name(format!("valmod-pool-{id}"))
                .spawn(move || pool_thread(&shared))
                .expect("spawn pool thread");
            spawned.push(handle);
        }
    }

    /// Runs `worker(0) .. worker(num_workers − 1)` and returns the results
    /// in worker-index order — the pool-backed replacement for spawning
    /// `num_workers` scoped threads. A single worker runs inline with no
    /// synchronization; otherwise worker 0 runs on the submitting thread
    /// while the rest are dispatched to (and helped along with) the pool.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic's original payload on the
    /// submitting thread if any worker panicked (the pool threads
    /// themselves survive).
    pub fn run<R: Send, F: Fn(usize) -> R + Sync>(&self, num_workers: usize, worker: F) -> Vec<R> {
        if num_workers <= 1 {
            return vec![worker(0)];
        }
        let _run_span = obs::span("pool_run", obs::Layer::Pool);
        self.ensure_threads(num_workers - 1);

        /// Disjoint-by-index result slots shared across workers.
        struct Slots<R>(Vec<UnsafeCell<Option<R>>>);
        // SAFETY: each worker index writes only its own slot; indices are
        // distinct per batch, so access is disjoint.
        unsafe impl<R: Send> Sync for Slots<R> {}

        struct Ctx<'a, R, F> {
            worker: &'a F,
            slots: &'a Slots<R>,
        }

        /// The typed trampoline `BatchState.call` points at.
        ///
        /// # Safety
        ///
        /// `ctx` must point at a live `Ctx<R, F>` whose slots have at
        /// least `index + 1` entries and whose `index` slot is not
        /// accessed concurrently.
        unsafe fn trampoline<R: Send, F: Fn(usize) -> R + Sync>(ctx: *const (), index: usize) {
            // SAFETY: forwarded precondition.
            let ctx = unsafe { &*ctx.cast::<Ctx<'_, R, F>>() };
            let result = (ctx.worker)(index);
            // SAFETY: slot `index` is written by exactly this job.
            unsafe { *ctx.slots.0[index].get() = Some(result) };
        }

        let slots = Slots((0..num_workers).map(|_| UnsafeCell::new(None)).collect());
        let ctx = Ctx { worker: &worker, slots: &slots };
        let latch = Latch::new(num_workers);
        let batch = BatchState { call: trampoline::<R, F>, ctx: std::ptr::addr_of!(ctx).cast() };

        // Enqueue workers 1..n, wake the pool, run worker 0 here. Jobs go
        // to the submitting thread's entered lane, if any (see
        // [`LaneHandle::enter`]), else the default queue.
        let route = self.current_lane();
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            for index in 1..num_workers {
                queue.push_routed(route, Job { batch: &batch, latch: Arc::clone(&latch), index });
            }
        }
        if route.is_some() {
            obs::count!(pool_lane_submits, num_workers as u64 - 1);
        }
        obs::count!(pool_submits, num_workers as u64 - 1);
        obs::metrics().pool_queue_depth.add(num_workers as i64 - 1);
        self.shared.work_ready.notify_all();
        let panic0 = unsafe {
            // SAFETY: `batch` is alive (it is on this stack frame) and we
            // do not return before the latch reaches zero below.
            batch.run_worker(0)
        };
        latch.count_down(panic0);

        // Help drain the queue (our jobs, or concurrent batches' while
        // ours is in flight) until our batch completes, then join. Our own
        // queued jobs can only leave the queue by being executed, so an
        // empty queue means they are all running or done — waiting is
        // then deadlock-free.
        if let Some(payload) = self.help_until(&latch) {
            std::panic::resume_unwind(payload);
        }

        slots
            .0
            .into_iter()
            .map(|slot| slot.into_inner().expect("every worker index ran exactly once"))
            .collect()
    }

    /// Opens a submission scope on this pool: inside `f`, batches can be
    /// submitted *without blocking* via [`PoolScope::submit`] and waited
    /// via the returned [`BatchHandle`]s, concurrently with ordinary
    /// blocking [`WorkerPool::run`]/[`WorkerPool::for_each_mut`] batches on
    /// the same pool.
    ///
    /// The scope is what makes the non-blocking API sound with
    /// stack-borrowed jobs: every batch submitted inside `f` is guaranteed
    /// to have finished when `scope` returns — normally because its handle
    /// was waited or dropped, and otherwise (a handle leaked with
    /// `mem::forget`, or `f` unwinding past unwaited handles) because the
    /// scope itself drains the leftover latches before returning, exactly
    /// like [`std::thread::scope`] joins its spawned threads. A leaked
    /// handle leaks its heap-pinned batch context (so in-flight jobs never
    /// dangle), never its borrows.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic of any batch that was neither
    /// waited nor dropped inside `f` (waited/dropped handles re-raise at
    /// their own site), after `f`'s own panic if both happen.
    pub fn scope<'env, T>(&self, f: impl for<'p> FnOnce(&PoolScope<'p, 'env>) -> T) -> T {
        let scope = PoolScope {
            pool: self,
            pending: Mutex::new(Vec::new()),
            env: PhantomData,
            scope: PhantomData,
        };
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Every batch submitted in this scope must complete before the
        // borrowed environment can die with this frame.
        let leftover = scope.drain_pending();
        match result {
            Err(panic) => std::panic::resume_unwind(panic),
            Ok(value) => {
                if let Some(panic) = leftover {
                    std::panic::resume_unwind(panic);
                }
                value
            }
        }
    }

    /// The help-then-join loop shared by every waiter of a batch `latch`:
    /// drain queued jobs (our own, or concurrent batches' while ours is in
    /// flight) until the latch completes, then block on it. Returns the
    /// batch's first panic payload, if any.
    fn help_until(&self, latch: &Latch) -> Option<Box<dyn Any + Send>> {
        while !latch.is_done() {
            let job = {
                let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
                queue.next_job()
            };
            match job {
                // SAFETY: every queued job's batch is kept alive by its own
                // submitter (or submitting scope) blocking exactly as we do
                // here until the job's latch counts down.
                Some(job) => {
                    // A job drained by a *waiter* rather than a pool thread
                    // is the helping-submitter steal the module docs
                    // describe.
                    obs::metrics().pool_queue_depth.add(-1);
                    obs::count!(pool_steals, 1);
                    unsafe { job.execute() }
                }
                None => break,
            }
        }
        latch.join()
    }

    /// Splits `out` into `workers` contiguous chunks and fills every
    /// element via `f(global_index, &mut element)` — the pool-backed
    /// replacement for the per-phase `std::thread::scope` chunking loops.
    /// Results are independent of the chunking by construction: each
    /// element's update depends only on its own index.
    pub fn for_each_mut<T: Send>(
        &self,
        out: &mut [T],
        workers: usize,
        f: impl Fn(usize, &mut T) + Sync,
    ) {
        if workers <= 1 || out.len() <= 1 {
            for (i, v) in out.iter_mut().enumerate() {
                f(i, v);
            }
            return;
        }
        let chunk = out.len().div_ceil(workers);
        // Hand each worker exclusive access to its chunk through a Mutex;
        // the lock is uncontended (each worker index takes its own chunk
        // exactly once) and costs one acquisition per chunk per batch.
        let chunks: Vec<Mutex<(usize, &mut [T])>> = out
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, data)| Mutex::new((ci * chunk, data)))
            .collect();
        self.run(chunks.len(), |w| {
            let mut guard = chunks[w].lock().expect("chunk lock poisoned");
            let (base, data) = &mut *guard;
            for (off, v) in data.iter_mut().enumerate() {
                f(*base + off, v);
            }
        });
    }

    /// Registers a submission lane on this pool — the fair-scheduling
    /// unit behind multi-tenant serving, where every tenant owns one lane
    /// and a hot tenant must not starve the rest.
    ///
    /// # Scheduling policy (fairness and starvation guarantees)
    ///
    /// Queued jobs are drained by pool threads and helping submitters
    /// under one policy, [`PoolQueue::next_job`]:
    ///
    /// * **Within a priority class**, non-empty lanes are served
    ///   round-robin in registration order — between any two consecutive
    ///   picks from one lane, every other non-empty lane of the class is
    ///   picked once. A lane queuing `B` jobs therefore delays a peer's
    ///   next job by at most one job execution, never by `B`.
    /// * **Across classes**, [`LanePriority::Interactive`] is preferred,
    ///   but whenever both classes have queued work at least one
    ///   bulk-class job is picked in every `BULK_SERVICE_STRIDE` (= 4)
    ///   consecutive picks — so bulk lanes are delayed by at most 3 job
    ///   executions per pick even under sustained interactive load, and
    ///   interactive jobs wait at most 1 bulk execution. Neither class
    ///   can starve the other.
    /// * The **default queue** (batches submitted outside any lane) is
    ///   scheduled as one more bulk-class source, so existing lane-less
    ///   callers keep their FIFO behavior and the same starvation bound.
    ///
    /// The policy decides only *which* queued job a thread takes next;
    /// per-batch results are still collected by worker index, so lanes
    /// never affect what a batch computes — only when it runs
    /// (byte-identity across lane layouts is proptested in
    /// `valmod-stream`).
    ///
    /// # Backpressure
    ///
    /// `max_pending` bounds the lane's submission-queue depth as counted
    /// by [`LaneHandle::try_admit`] tickets: once `max_pending` tickets
    /// are outstanding, further admissions fail with [`LaneSaturated`] —
    /// the typed signal a serving front-end maps to its protocol error
    /// (never a panic, never a silent drop).
    ///
    /// Dropping every clone of the returned handle unregisters the lane;
    /// jobs still queued in it at that point migrate to the default
    /// queue, so no submitted work is ever lost.
    #[must_use]
    pub fn lane(&self, priority: LanePriority, max_pending: usize) -> LaneHandle {
        let id = self.shared.next_lane_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            queue.lanes.push(LaneQueue { id, priority, jobs: VecDeque::new() });
            obs::metrics().pool_lanes.set(queue.lanes.len() as i64);
        }
        LaneHandle {
            inner: Arc::new(LaneInner {
                shared: Arc::clone(&self.shared),
                id,
                priority,
                max_pending,
                pending: AtomicUsize::new(0),
            }),
        }
    }

    /// The lane the current thread has entered on *this* pool, if any.
    fn current_lane(&self) -> Option<u64> {
        CURRENT_LANE.with(|cell| {
            cell.get().and_then(|(shared, id)| {
                (shared == Arc::as_ptr(&self.shared) as usize).then_some(id)
            })
        })
    }
}

thread_local! {
    /// The lane new batches on this thread route into: the identity of the
    /// pool's shared state (so a guard never routes jobs into a *different*
    /// pool's lane id) plus the lane id. Set by [`LaneHandle::enter`].
    static CURRENT_LANE: Cell<Option<(usize, u64)>> = const { Cell::new(None) };
}

/// Priority class of a [`WorkerPool`] lane. See [`WorkerPool::lane`] for
/// the exact scheduling and starvation guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LanePriority {
    /// Latency-sensitive work (live queries): preferred by the scheduler,
    /// subject to the bulk service guarantee.
    Interactive,
    /// Throughput work (ingest, bootstraps): guaranteed at least one pick
    /// in every `BULK_SERVICE_STRIDE` when contended.
    Bulk,
    /// Housekeeping work (compaction, re-checkpointing): scheduled in the
    /// bulk class — same service guarantee as [`LanePriority::Bulk`] —
    /// but a distinct label, so front-ends can expose it as a QoS tier
    /// and meter it per lane.
    Maintenance,
}

impl LanePriority {
    fn class(self) -> usize {
        match self {
            LanePriority::Interactive => 0,
            LanePriority::Bulk | LanePriority::Maintenance => 1,
        }
    }
}

/// Registered-lane state shared by every [`LaneHandle`] clone and every
/// outstanding [`LaneTicket`].
struct LaneInner {
    shared: Arc<Shared>,
    id: u64,
    priority: LanePriority,
    max_pending: usize,
    /// Outstanding admission tickets — the lane's submission-queue depth.
    pending: AtomicUsize,
}

impl Drop for LaneInner {
    fn drop(&mut self) {
        let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
        if let Some(pos) = queue.lane_pos(self.id) {
            let orphaned = queue.lanes.remove(pos);
            // A closed lane never loses work: leftover jobs (possible when
            // a handle is dropped while another thread's batch is still
            // queued) drain through the default queue.
            queue.jobs.extend(orphaned.jobs);
            obs::metrics().pool_lanes.set(queue.lanes.len() as i64);
        }
    }
}

/// A handle on one registered submission lane (cheaply cloneable; the
/// lane lives until the last clone drops). Created by [`WorkerPool::lane`].
#[derive(Clone)]
pub struct LaneHandle {
    inner: Arc<LaneInner>,
}

impl std::fmt::Debug for LaneHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneHandle")
            .field("id", &self.inner.id)
            .field("priority", &self.inner.priority)
            .field("pending", &self.pending())
            .finish()
    }
}

impl LaneHandle {
    /// Routes every batch the current thread submits (via
    /// [`WorkerPool::run`], [`WorkerPool::for_each_mut`] or
    /// [`PoolScope::submit`]) into this lane until the guard drops —
    /// including batches submitted by library code that has never heard
    /// of lanes, which is the point: a tenant front-end enters its lane
    /// once and the whole engine underneath inherits the routing.
    ///
    /// Guards nest (the previous lane is restored on drop) and are
    /// per-thread; entering a lane on one thread never affects another.
    #[must_use]
    pub fn enter(&self) -> LaneGuard<'_> {
        let prev = CURRENT_LANE.with(|cell| {
            cell.replace(Some((Arc::as_ptr(&self.inner.shared) as usize, self.inner.id)))
        });
        LaneGuard { prev, _lane: PhantomData }
    }

    /// The lane's priority class.
    #[must_use]
    pub fn priority(&self) -> LanePriority {
        self.inner.priority
    }

    /// Outstanding admission tickets (the queue-depth backpressure input).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.inner.pending.load(Ordering::Relaxed)
    }

    /// Admits one operation into the lane, or reports saturation once
    /// `max_pending` tickets are outstanding — the queue-depth
    /// backpressure signal. The returned ticket releases its slot on
    /// drop.
    ///
    /// # Errors
    ///
    /// [`LaneSaturated`] with the observed depth and the limit; the
    /// caller surfaces it as its typed protocol error.
    pub fn try_admit(&self) -> Result<LaneTicket, LaneSaturated> {
        let mut depth = self.inner.pending.load(Ordering::Relaxed);
        loop {
            if depth >= self.inner.max_pending {
                obs::count!(pool_lane_rejections, 1);
                return Err(LaneSaturated { pending: depth, limit: self.inner.max_pending });
            }
            match self.inner.pending.compare_exchange_weak(
                depth,
                depth + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(LaneTicket { inner: Arc::clone(&self.inner) }),
                Err(actual) => depth = actual,
            }
        }
    }
}

/// Scope guard of [`LaneHandle::enter`]; restores the thread's previous
/// lane on drop.
pub struct LaneGuard<'a> {
    prev: Option<(usize, u64)>,
    _lane: PhantomData<&'a LaneHandle>,
}

impl Drop for LaneGuard<'_> {
    fn drop(&mut self) {
        CURRENT_LANE.with(|cell| cell.set(self.prev));
    }
}

/// One admitted operation's slot in a lane's bounded submission queue;
/// dropping it frees the slot.
pub struct LaneTicket {
    inner: Arc<LaneInner>,
}

impl std::fmt::Debug for LaneTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneTicket").field("lane", &self.inner.id).finish()
    }
}

impl Drop for LaneTicket {
    fn drop(&mut self) {
        self.inner.pending.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Typed backpressure signal of [`LaneHandle::try_admit`]: the lane's
/// submission queue is at its depth limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneSaturated {
    /// Outstanding operations observed at admission time.
    pub pending: usize,
    /// The lane's configured depth limit.
    pub limit: usize,
}

impl std::fmt::Display for LaneSaturated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lane saturated: {} pending operations at limit {}", self.pending, self.limit)
    }
}

impl std::error::Error for LaneSaturated {}

/// A submission scope opened by [`WorkerPool::scope`]. Lives on the
/// opening thread's stack; [`PoolScope::submit`] enqueues batches without
/// blocking and the scope guarantees they all finish before `scope`
/// returns. The two lifetimes mirror [`std::thread::Scope`]: `'p` is the
/// scope itself, `'env` the borrowed environment jobs may capture
/// (invariant, so a submitted closure can never smuggle in a shorter
/// borrow than the scope will wait for).
pub struct PoolScope<'p, 'env: 'p> {
    pool: &'p WorkerPool,
    /// Latches of every batch submitted in this scope, drained at scope
    /// exit so leaked/unwaited handles still complete before `'env` dies.
    pending: Mutex<Vec<Arc<Latch>>>,
    scope: PhantomData<&'p mut &'p ()>,
    env: PhantomData<&'env mut &'env ()>,
}

impl<'p, 'env> PoolScope<'p, 'env> {
    /// Enqueues `worker(0) .. worker(num_workers − 1)` on the pool and
    /// returns immediately with a waitable [`BatchHandle`] — the
    /// non-blocking counterpart of [`WorkerPool::run`]. The submitting
    /// thread runs *none* of the jobs at submit time (that is the point:
    /// it is free to run a different batch, or direct work, concurrently);
    /// it helps drain the queue once it waits on the handle.
    ///
    /// Results are collected per worker index exactly as in
    /// [`WorkerPool::run`], so a submitted batch returns byte-identical
    /// results to a blocking run of the same worker function — which pool
    /// thread executes a job is invisible.
    pub fn submit<R, F>(&self, num_workers: usize, worker: F) -> BatchHandle<'p, R>
    where
        R: Send + 'env,
        F: Fn(usize) -> R + Sync + 'env,
    {
        let num_workers = num_workers.max(1);
        // All jobs go to the pool; without `+ 1` the submitter could find
        // every pool thread busy with its *other* (blocking) batch.
        self.pool.ensure_threads(num_workers);

        let ctx = Box::new(SubmitCtx {
            worker,
            slots: (0..num_workers).map(|_| UnsafeCell::new(None)).collect::<Vec<_>>(),
        });
        let state = Box::new(BatchState {
            call: submit_trampoline::<R, F>,
            ctx: std::ptr::from_ref::<SubmitCtx<R, F>>(&ctx).cast(),
        });
        let latch = Latch::new(num_workers);
        let route = self.pool.current_lane();
        {
            let mut queue = self.pool.shared.queue.lock().expect("pool queue poisoned");
            for index in 0..num_workers {
                queue.push_routed(
                    route,
                    Job {
                        batch: std::ptr::from_ref::<BatchState>(&state),
                        latch: Arc::clone(&latch),
                        index,
                    },
                );
            }
        }
        if route.is_some() {
            obs::count!(pool_lane_submits, num_workers as u64);
        }
        obs::count!(pool_submits, num_workers as u64);
        obs::metrics().pool_queue_depth.add(num_workers as i64);
        self.pool.shared.work_ready.notify_all();
        self.pending.lock().expect("scope registry poisoned").push(Arc::clone(&latch));
        BatchHandle { pool: self.pool, latch, _state: state, ctx, done: false }
    }

    /// Joins every batch submitted in this scope whose handle did not
    /// already join it (leaked or dropped-during-unwind handles), helping
    /// drain the queue so completion never depends on pool-thread count.
    /// Returns the first unclaimed panic payload.
    fn drain_pending(&self) -> Option<Box<dyn Any + Send>> {
        let latches = std::mem::take(&mut *self.pending.lock().expect("scope registry poisoned"));
        let mut first_panic = None;
        for latch in latches {
            let panic = self.pool.help_until(&latch);
            if first_panic.is_none() {
                first_panic = panic;
            }
        }
        first_panic
    }
}

/// The typed context of one submitted batch: the worker closure plus one
/// result slot per worker index, heap-pinned for the batch duration by the
/// owning [`BatchHandle`] (or leaked with it — never freed early).
struct SubmitCtx<R, F> {
    worker: F,
    slots: Vec<UnsafeCell<Option<R>>>,
}

// SAFETY: jobs on several pool threads share the context; the closure is
// `Sync` by bound, and each worker index writes only its own slot.
unsafe impl<R: Send, F: Sync> Sync for SubmitCtx<R, F> {}

/// Typed view a [`BatchHandle`] keeps of its context once `R` is all it
/// needs to know (the worker type is erased behind the box).
trait ResultSlots<R> {
    /// Drains the filled slots in worker-index order. Callable only after
    /// the batch latch reached zero.
    fn take_results(&mut self) -> Vec<R>;
}

impl<R: Send, F> ResultSlots<R> for SubmitCtx<R, F> {
    fn take_results(&mut self) -> Vec<R> {
        std::mem::take(&mut self.slots)
            .into_iter()
            .map(|slot| slot.into_inner().expect("every worker index ran exactly once"))
            .collect()
    }
}

/// The typed trampoline a submitted batch's [`BatchState`] points at.
///
/// # Safety
///
/// `ctx` must point at a live `SubmitCtx<R, F>` with at least `index + 1`
/// slots whose `index` slot is not accessed concurrently — guaranteed by
/// the handle/scope keeping the context boxed until the latch is drained,
/// and by worker indices being unique per batch.
unsafe fn submit_trampoline<R: Send, F: Fn(usize) -> R + Sync>(ctx: *const (), index: usize) {
    // SAFETY: forwarded precondition.
    let ctx = unsafe { &*ctx.cast::<SubmitCtx<R, F>>() };
    let result = (ctx.worker)(index);
    // SAFETY: slot `index` is written by exactly this job.
    unsafe { *ctx.slots[index].get() = Some(result) };
}

/// A batch in flight, returned by [`PoolScope::submit`]. Waitable
/// ([`BatchHandle::wait`] helps drain the pool queue, joins the batch's
/// latch, and returns the results in worker order); dropping the handle
/// joins the batch without collecting results. The handle owns the
/// heap-pinned batch state the queued jobs point into, which is why
/// leaking it leaks memory but never dangles a job.
pub struct BatchHandle<'p, R: Send> {
    pool: &'p WorkerPool,
    latch: Arc<Latch>,
    /// Keeps the type-erased batch descriptor the queued `Job`s point at
    /// alive (and address-stable) until the latch confirms completion.
    _state: Box<BatchState>,
    ctx: Box<dyn ResultSlots<R> + 'p>,
    done: bool,
}

impl<R: Send> std::fmt::Debug for BatchHandle<'_, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchHandle").field("complete", &self.latch.is_done()).finish()
    }
}

impl<R: Send> BatchHandle<'_, R> {
    /// Whether every job of the batch has already finished (non-blocking).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.latch.is_done()
    }

    /// Blocks until the batch completes — helping drain the pool queue,
    /// exactly like a blocking [`WorkerPool::run`] would from this point —
    /// and returns the results in worker-index order.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic's original payload, as
    /// [`WorkerPool::run`] does.
    pub fn wait(mut self) -> Vec<R> {
        let panic = self.pool.help_until(&self.latch);
        self.done = true;
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        self.ctx.take_results()
    }
}

impl<R: Send> Drop for BatchHandle<'_, R> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // An abandoned handle still joins its batch (the jobs borrow the
        // environment), and a worker panic must not vanish silently — it
        // re-raises here unless this drop is itself part of an unwind.
        let panic = self.pool.help_until(&self.latch);
        if let Some(payload) = panic {
            if !std::thread::panicking() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            queue.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        let handles = std::mem::take(&mut *self.spawned.lock().expect("pool registry poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// A pool thread's life: park on the condvar until a job (or shutdown)
/// arrives, execute, repeat. Parking is a real `Condvar::wait` — no
/// spinning — which the idle test below verifies via the OS.
fn pool_thread(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.next_job() {
                    obs::metrics().pool_queue_depth.add(-1);
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                // One park/unpark transition per condvar round trip; the
                // counters are relaxed atomics, so the idle-parking test
                // (which watches CPU ticks via /proc) is unaffected.
                obs::count!(pool_parks, 1);
                queue = shared.work_ready.wait(queue).expect("pool queue poisoned");
                obs::count!(pool_unparks, 1);
            }
        };
        // SAFETY: the job's submitting `run` frame is blocked on the batch
        // latch until this (and every) job of the batch completes, keeping
        // the batch state and its borrows alive.
        unsafe { job.execute() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_worker_order() {
        let pool = WorkerPool::new();
        for workers in [1usize, 2, 3, 8, 17] {
            let got = pool.run(workers, |w| w * 10);
            let want: Vec<usize> = (0..workers).map(|w| w * 10).collect();
            assert_eq!(got, want, "at {workers} workers");
        }
    }

    #[test]
    fn reused_pool_matches_scoped_spawn() {
        // The pool is a drop-in for scoped spawning: same worker function,
        // same results, across many reuses of one pool.
        let pool = WorkerPool::new();
        let work = |w: usize| -> u64 { (0..10_000u64).map(|x| x.wrapping_mul(w as u64 + 1)).sum() };
        for round in 0..20 {
            let workers = 1 + round % 8;
            let scoped: Vec<u64> = {
                let mut results = Vec::new();
                std::thread::scope(|scope| {
                    let handles: Vec<_> =
                        (0..workers).map(|w| scope.spawn(move || work(w))).collect();
                    for h in handles {
                        results.push(h.join().unwrap());
                    }
                });
                results
            };
            assert_eq!(pool.run(workers, work), scoped, "round {round}");
        }
    }

    #[test]
    fn for_each_mut_fills_every_index() {
        let pool = WorkerPool::new();
        for workers in [1usize, 2, 3, 8] {
            let mut data = vec![0usize; 103];
            pool.for_each_mut(&mut data, workers, |i, v| *v = i * i);
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i * i, "index {i} at {workers} workers");
            }
        }
    }

    #[test]
    fn oversubscribed_batches_complete() {
        // More logical workers than pool threads: the caller helps, so the
        // batch completes even though the pool never grows past the cap.
        let pool = WorkerPool::new();
        let results = pool.run(40, |w| w);
        assert_eq!(results.len(), 40);
        assert!(results.iter().enumerate().all(|(i, &w)| i == w));
    }

    #[test]
    fn worker_panics_propagate_and_pool_survives() {
        let pool = WorkerPool::new();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, |w| {
                assert!(w != 2, "worker 2 exploding");
                w
            })
        }));
        // The original payload (not a generic wrapper) reaches the
        // submitter, so assertion messages from deep in a kernel survive.
        let payload = outcome.expect_err("panic must propagate to the submitter");
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string payload>");
        assert!(msg.contains("worker 2 exploding"), "payload was: {msg}");
        // The pool threads survived and serve the next batch normally.
        assert_eq!(pool.run(4, |w| w + 1), vec![1, 2, 3, 4]);
    }

    #[test]
    fn concurrent_batches_from_many_threads_interleave_safely() {
        let pool = Arc::new(WorkerPool::new());
        std::thread::scope(|scope| {
            for t in 0..6usize {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for round in 0..10 {
                        let base = t * 1000 + round;
                        let got = pool.run(3, move |w| base + w);
                        assert_eq!(got, vec![base, base + 1, base + 2]);
                    }
                });
            }
        });
    }

    #[test]
    fn submitted_batch_matches_blocking_run() {
        let pool = WorkerPool::new();
        let work = |w: usize| -> u64 { (0..5_000u64).map(|x| x.rotate_left(w as u32)).sum() };
        for workers in [1usize, 2, 3, 8, 19] {
            let blocking = pool.run(workers, work);
            let submitted = pool.scope(|s| s.submit(workers, work).wait());
            assert_eq!(blocking, submitted, "at {workers} workers");
        }
    }

    #[test]
    fn two_batches_overlap_on_one_pool() {
        // The pipelining contract: a submitted batch makes progress while
        // the submitter runs a *blocking* batch on the same pool, and both
        // come back correct. The submitted batch blocks on a channel the
        // blocking batch releases, so completion proves true concurrency
        // (a deferred-until-wait execution would deadlock here, which the
        // timeout turns into a failure).
        let pool = WorkerPool::new();
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let rx = Mutex::new(rx);
        pool.scope(|s| {
            let handle = s.submit(1, |_| {
                rx.lock().unwrap().recv_timeout(std::time::Duration::from_secs(10)).is_ok()
            });
            let blocking = pool.run(2, |w| {
                if w == 0 {
                    tx.send(()).unwrap();
                }
                w * 3
            });
            assert_eq!(blocking, vec![0, 3]);
            assert_eq!(handle.wait(), vec![true]);
        });
    }

    #[test]
    fn dropped_handle_joins_its_batch() {
        let pool = WorkerPool::new();
        let ran = std::sync::atomic::AtomicUsize::new(0);
        pool.scope(|s| {
            let _ = s.submit(5, |_| {
                ran.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
            // Handle dropped here without wait(); drop must join.
        });
        assert_eq!(ran.load(std::sync::atomic::Ordering::Relaxed), 5);
    }

    #[test]
    fn leaked_handle_is_drained_by_the_scope() {
        // `mem::forget` on the handle must not let jobs outlive the scope
        // (they borrow `ran` from this frame): the scope's exit drain picks
        // the latch up. The leaked batch context is the price — memory, not
        // soundness.
        let pool = WorkerPool::new();
        let ran = std::sync::atomic::AtomicUsize::new(0);
        pool.scope(|s| {
            let handle = s.submit(4, |_| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                ran.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
            std::mem::forget(handle);
        });
        assert_eq!(ran.load(std::sync::atomic::Ordering::Relaxed), 4);
    }

    #[test]
    fn submitted_batch_panics_propagate_at_wait() {
        let pool = WorkerPool::new();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                let handle = s.submit(3, |w| {
                    assert!(w != 1, "submitted worker 1 exploding");
                    w
                });
                handle.wait()
            })
        }));
        let payload = outcome.expect_err("panic must reach the waiter");
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string payload>");
        assert!(msg.contains("submitted worker 1 exploding"), "payload was: {msg}");
        // The pool survives for the next batch.
        assert_eq!(pool.run(2, |w| w), vec![0, 1]);
    }

    #[test]
    fn many_interleaved_submissions_stay_ordered() {
        // Several batches in flight at once on one pool, waited out of
        // submission order — results must still come back per batch in
        // worker-index order.
        let pool = WorkerPool::new();
        pool.scope(|s| {
            let handles: Vec<_> = (0..6usize).map(|b| s.submit(3, move |w| b * 100 + w)).collect();
            for (b, handle) in handles.into_iter().enumerate().rev() {
                assert_eq!(handle.wait(), vec![b * 100, b * 100 + 1, b * 100 + 2]);
            }
        });
    }

    /// A queue-only job for scheduler unit tests: points at a leaked
    /// no-op batch (harmless if a pool thread ever executes it), with the
    /// `index` field used as a provenance tag.
    fn dummy_job(tag: usize) -> Job {
        unsafe fn noop(_ctx: *const (), _index: usize) {}
        let batch: &'static BatchState =
            Box::leak(Box::new(BatchState { call: noop, ctx: std::ptr::null() }));
        Job { batch, latch: Latch::new(1), index: tag }
    }

    #[test]
    fn scheduler_round_robins_within_a_class() {
        let mut queue = PoolQueue {
            jobs: VecDeque::new(),
            lanes: Vec::new(),
            rr: [0, 0],
            contended_interactive_picks: 0,
            shutdown: false,
        };
        queue.lanes.push(LaneQueue { id: 0, priority: LanePriority::Bulk, jobs: VecDeque::new() });
        queue.lanes.push(LaneQueue { id: 1, priority: LanePriority::Bulk, jobs: VecDeque::new() });
        for round in 0..3 {
            queue.lanes[0].jobs.push_back(dummy_job(round));
            queue.lanes[1].jobs.push_back(dummy_job(10 + round));
            queue.jobs.push_back(dummy_job(20 + round));
        }
        let picks: Vec<usize> = (0..9).map(|_| queue.next_job().unwrap().index).collect();
        // Rotation over [lane0, lane1, default], FIFO within each source:
        // a lane holding 3 jobs delays a peer by at most one execution.
        // While every source has work the rotation is exact; once sources
        // drain the cursor re-wraps over the survivors, so only assert
        // the full-rotation prefix plus completeness of the tail.
        assert_eq!(picks[..7], [0, 10, 20, 1, 11, 21, 2]);
        let mut tail: Vec<usize> = picks[7..].to_vec();
        tail.sort_unstable();
        assert_eq!(tail, vec![12, 22]);
        assert!(queue.next_job().is_none());
    }

    #[test]
    fn bulk_gets_one_pick_per_stride_under_interactive_load() {
        let mut queue = PoolQueue {
            jobs: VecDeque::new(),
            lanes: Vec::new(),
            rr: [0, 0],
            contended_interactive_picks: 0,
            shutdown: false,
        };
        queue.lanes.push(LaneQueue {
            id: 0,
            priority: LanePriority::Interactive,
            jobs: VecDeque::new(),
        });
        queue.lanes.push(LaneQueue { id: 1, priority: LanePriority::Bulk, jobs: VecDeque::new() });
        for tag in 0..9 {
            queue.lanes[0].jobs.push_back(dummy_job(tag));
        }
        for tag in 100..103 {
            queue.lanes[1].jobs.push_back(dummy_job(tag));
        }
        let picks: Vec<usize> = (0..12).map(|_| queue.next_job().unwrap().index).collect();
        // Interactive preferred, bulk guaranteed 1 in every 4 while both
        // classes wait; once interactive drains, the rest is pure bulk.
        assert_eq!(picks, vec![0, 1, 2, 100, 3, 4, 5, 101, 6, 7, 8, 102]);
        // Uncontended interactive never pays the stride.
        for tag in 0..6 {
            queue.lanes[0].jobs.push_back(dummy_job(tag));
        }
        let solo: Vec<usize> = (0..6).map(|_| queue.next_job().unwrap().index).collect();
        assert_eq!(solo, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn try_admit_bounds_lane_depth() {
        let pool = WorkerPool::new();
        let lane = pool.lane(LanePriority::Interactive, 2);
        let t1 = lane.try_admit().expect("depth 0 admits");
        let _t2 = lane.try_admit().expect("depth 1 admits");
        let err = lane.try_admit().expect_err("depth 2 is the limit");
        assert_eq!(err, LaneSaturated { pending: 2, limit: 2 });
        assert_eq!(lane.pending(), 2);
        drop(t1);
        assert!(lane.try_admit().is_ok(), "released slot admits again");
    }

    #[test]
    fn lane_guards_nest_and_stay_per_pool() {
        let pool = WorkerPool::new();
        let a = pool.lane(LanePriority::Interactive, 4);
        let b = pool.lane(LanePriority::Bulk, 4);
        assert_eq!(pool.current_lane(), None);
        let ga = a.enter();
        assert_eq!(pool.current_lane(), Some(a.inner.id));
        {
            let _gb = b.enter();
            assert_eq!(pool.current_lane(), Some(b.inner.id));
        }
        assert_eq!(pool.current_lane(), Some(a.inner.id), "inner guard restores the outer lane");
        // A different pool never routes into this pool's lane.
        let other = WorkerPool::new();
        assert_eq!(other.current_lane(), None);
        drop(ga);
        assert_eq!(pool.current_lane(), None);
    }

    #[test]
    fn dropping_a_lane_spills_queued_jobs_to_the_default_queue() {
        let pool = WorkerPool::new();
        let lane = pool.lane(LanePriority::Bulk, 8);
        {
            let mut queue = pool.shared.queue.lock().unwrap();
            let pos = queue.lane_pos(lane.inner.id).unwrap();
            for tag in 0..3 {
                queue.lanes[pos].jobs.push_back(dummy_job(tag));
            }
        }
        drop(lane);
        let queue = pool.shared.queue.lock().unwrap();
        assert!(queue.lanes.is_empty(), "dropped lane unregisters");
        assert_eq!(queue.jobs.len(), 3, "orphaned jobs migrate, never vanish");
    }

    #[test]
    fn lane_routed_batches_return_identical_results() {
        // Lanes decide scheduling order only: a batch routed through any
        // lane (or none) returns exactly what the serial map would.
        let pool = Arc::new(WorkerPool::new());
        let interactive = pool.lane(LanePriority::Interactive, 1024);
        let bulk = pool.lane(LanePriority::Bulk, 1024);
        std::thread::scope(|scope| {
            for (t, lane) in [Some(&interactive), Some(&bulk), None].into_iter().enumerate() {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    let _guard = lane.map(LaneHandle::enter);
                    for round in 0..15 {
                        let base = t * 1000 + round;
                        let got = pool.run(4, move |w| base * 10 + w);
                        let want: Vec<usize> = (0..4).map(|w| base * 10 + w).collect();
                        assert_eq!(got, want, "thread {t} round {round}");
                    }
                });
            }
        });
    }

    /// Reads `(state, utime + stime ticks)` of every thread of this
    /// process whose name starts with `valmod-pool`.
    #[cfg(target_os = "linux")]
    fn pool_thread_stats() -> Vec<(char, u64)> {
        let mut stats = Vec::new();
        let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
            return stats;
        };
        for task in tasks.flatten() {
            let Ok(stat) = std::fs::read_to_string(task.path().join("stat")) else {
                continue;
            };
            // Format: pid (comm) state utime=14th stime=15th ...; comm may
            // contain spaces, so split at the closing paren.
            let Some(close) = stat.rfind(')') else { continue };
            let Some(open) = stat.find('(') else { continue };
            if !stat[open + 1..close].starts_with("valmod-pool") {
                continue;
            }
            let rest: Vec<&str> = stat[close + 2..].split_whitespace().collect();
            let state = rest.first().and_then(|s| s.chars().next()).unwrap_or('?');
            let utime: u64 = rest.get(11).and_then(|s| s.parse().ok()).unwrap_or(0);
            let stime: u64 = rest.get(12).and_then(|s| s.parse().ok()).unwrap_or(0);
            stats.push((state, utime + stime));
        }
        stats
    }

    /// The satellite requirement: idle pool threads must truly park (block
    /// in `Condvar::wait`), not busy-spin. Verified against the OS: after
    /// a bounded settling window, every pool thread is in state `S`
    /// (interruptible sleep) and its CPU-tick counters stop advancing.
    #[test]
    #[cfg(target_os = "linux")]
    fn idle_pool_threads_park_without_spinning() {
        let pool = WorkerPool::new();
        // Force threads into existence, then go idle.
        assert_eq!(pool.run(4, |w| w).len(), 4);
        assert!(pool.threads() >= 3);

        // Time-bounded: wait up to 2 s for all pool threads to reach S.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        let mut settled = pool_thread_stats();
        while settled.iter().any(|&(state, _)| state != 'S') {
            assert!(std::time::Instant::now() < deadline, "pool threads never parked: {settled:?}");
            std::thread::sleep(std::time::Duration::from_millis(20));
            settled = pool_thread_stats();
        }
        let before: u64 = settled.iter().map(|&(_, ticks)| ticks).sum();

        // A spinning thread burns ~1 tick / 10 ms; over 300 ms of enforced
        // idleness, 3+ spinners would rack up ~90 ticks. Parked threads
        // accrue none.
        std::thread::sleep(std::time::Duration::from_millis(300));
        let after_stats = pool_thread_stats();
        let after: u64 = after_stats.iter().map(|&(_, ticks)| ticks).sum();
        assert!(after_stats.iter().all(|&(state, _)| state == 'S'), "woke up: {after_stats:?}");
        assert!(
            after - before <= 2,
            "idle pool threads consumed CPU: {before} -> {after} ticks ({after_stats:?})"
        );
    }
}
