//! Incremental (streaming) matrix profile — STAMPI (Matrix Profile I, §5).
//!
//! Monitoring scenarios append points one at a time; recomputing the
//! profile from scratch costs O(n²) per point. STAMPI maintains the exact
//! profile incrementally: each appended point creates one new window, and
//! the dot products between the new window and all others follow from the
//! previous append in O(1) each, so an append costs O(n).
//!
//! One subtlety is faithfully inherited from the literature: appends never
//! *decrease* existing entries (a new neighbor can only improve a match),
//! so the structure is exact at every step with no rescans.
//!
//! A second subtlety is **not** inherited: classic STAMPI keeps the
//! original series statistics; this implementation recomputes the window
//! statistics exactly on every append (O(1) amortized via running sums),
//! so its output matches a batch STOMP run bit-for-bit on the same data.

use valmod_series::znorm::zdist_from_dot;
use valmod_series::{Result, SeriesError};

use crate::profile::MatrixProfile;
use crate::validate_window;

/// An exact matrix profile maintained under point appends.
///
/// # Example
///
/// ```
/// use valmod_mp::streaming::StreamingProfile;
/// use valmod_mp::stomp::stomp;
/// use valmod_series::gen;
///
/// let series = gen::sine_mix(300, &[(40.0, 1.0)], 0.05, 3);
/// let mut sp = StreamingProfile::new(&series[..100], 16, 4).unwrap();
/// for &v in &series[100..] {
///     sp.append(v);
/// }
/// let batch = stomp(&series, 16, 4).unwrap();
/// for i in 0..batch.len() {
///     assert!((sp.profile().values[i] - batch.values[i]).abs() < 1e-6);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct StreamingProfile {
    values: Vec<f64>,
    l: usize,
    exclusion: usize,
    mp: MatrixProfile,
    /// Dot products of the *latest* window against every window
    /// (including itself), maintained across appends.
    last_qt: Vec<f64>,
    /// Running sum and sum of squares of the last `l` points.
    win_sum: f64,
    win_sum_sq: f64,
    /// Per-window means and stds, grown as windows appear.
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StreamingProfile {
    /// Bootstraps from an initial batch (computed with quadratic STOMP
    /// semantics; the batch must already host at least two non-trivially
    /// matching windows).
    ///
    /// # Errors
    ///
    /// [`SeriesError::TooShort`] via [`validate_window`],
    /// [`SeriesError::NonFinite`] for non-finite values.
    pub fn new(initial: &[f64], l: usize, exclusion: usize) -> Result<Self> {
        validate_window(initial.len(), l)?;
        if let Some(index) = initial.iter().position(|v| !v.is_finite()) {
            return Err(SeriesError::NonFinite { index });
        }
        // NOTE: unlike the batch engines, the streaming profile cannot
        // center by the global mean (the future is unknown). Distances are
        // shift-invariant regardless; extreme-magnitude inputs simply lose
        // a little precision, like in the original STAMPI.
        let values = initial.to_vec();
        let m = values.len() - l + 1;
        let mut this = Self {
            l,
            exclusion,
            mp: MatrixProfile::unfilled(l, exclusion, m),
            last_qt: Vec::new(),
            win_sum: values[values.len() - l..].iter().sum(),
            win_sum_sq: values[values.len() - l..].iter().map(|v| v * v).sum(),
            means: Vec::with_capacity(m),
            stds: Vec::with_capacity(m),
            values,
        };
        // Window statistics.
        let mut s: f64 = this.values[..l].iter().sum();
        let mut sq: f64 = this.values[..l].iter().map(|v| v * v).sum();
        for i in 0..m {
            if i > 0 {
                s += this.values[i + l - 1] - this.values[i - 1];
                sq += this.values[i + l - 1] * this.values[i + l - 1]
                    - this.values[i - 1] * this.values[i - 1];
            }
            let mean = s / l as f64;
            this.means.push(mean);
            this.stds.push((sq / l as f64 - mean * mean).max(0.0).sqrt());
        }
        // Dot products of the last window vs all windows.
        let last = m - 1;
        this.last_qt = (0..m)
            .map(|j| (0..l).map(|k| this.values[last + k] * this.values[j + k]).sum())
            .collect();
        // Seed the profile with all pairs of the initial batch (quadratic,
        // once). Reuse the batch engine for clarity and exactness.
        this.mp = crate::stomp::stomp(&this.values, l, exclusion)?;
        Ok(this)
    }

    /// The current exact matrix profile.
    #[must_use]
    pub fn profile(&self) -> &MatrixProfile {
        &self.mp
    }

    /// The points consumed so far.
    #[must_use]
    pub fn series(&self) -> &[f64] {
        &self.values
    }

    /// Appends one point and updates the profile exactly. O(n).
    ///
    /// Thin wrapper over [`StreamingProfile::try_append`] for callers that
    /// validate at the sensor boundary.
    ///
    /// # Panics
    ///
    /// Panics on non-finite input.
    pub fn append(&mut self, value: f64) {
        self.try_append(value).expect("streaming point must be finite");
    }

    /// Appends one point and updates the profile exactly. O(n).
    ///
    /// A live feed can deliver NaN/∞ (sensor glitches, parse bugs); this
    /// variant rejects the point *before* touching any state, so a
    /// long-running service keeps its exact profile and simply drops or
    /// logs the sample.
    ///
    /// # Errors
    ///
    /// [`SeriesError::NonFinite`] with the would-be index of the rejected
    /// point; the profile and all internal state are left untouched.
    pub fn try_append(&mut self, value: f64) -> Result<()> {
        if !value.is_finite() {
            return Err(SeriesError::NonFinite { index: self.values.len() });
        }
        let l = self.l;
        self.values.push(value);
        let n = self.values.len();
        let new_i = n - l; // offset of the window that just appeared
        let dropped = self.values[new_i - 1];

        // Window statistics of the new window via running sums.
        self.win_sum += value - dropped;
        self.win_sum_sq += value * value - dropped * dropped;
        let mean = self.win_sum / l as f64;
        let std = (self.win_sum_sq / l as f64 - mean * mean).max(0.0).sqrt();
        self.means.push(mean);
        self.stds.push(std);

        // QT(new, j) = QT(prev, j-1) − dropped·t[j−1] + value·t[j+l−1]
        // (the previous last window starts one earlier). Walk j from high
        // to low so prev values are still in place, then fill j = 0.
        self.last_qt.push(0.0);
        let m = new_i + 1;
        for j in (1..m).rev() {
            self.last_qt[j] = value.mul_add(
                self.values[j + l - 1],
                self.last_qt[j - 1] - dropped * self.values[j - 1],
            );
        }
        self.last_qt[0] = (0..l).map(|k| self.values[new_i + k] * self.values[k]).sum();

        // Offer the new window against everything (symmetric updates).
        self.mp.values.push(f64::INFINITY);
        self.mp.indices.push(None);
        for j in 0..m {
            if new_i.abs_diff(j) <= self.exclusion {
                continue;
            }
            // zdist_from_dot applies the flat-window conventions itself.
            let d = zdist_from_dot(self.last_qt[j], l, mean, std, self.means[j], self.stds[j]);
            self.mp.offer(new_i, d, j);
            self.mp.offer(j, d, new_i);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::StreamingProfile;
    use crate::default_exclusion;
    use crate::stomp::stomp;
    use valmod_series::gen;

    fn assert_matches_batch(series: &[f64], l: usize, warmup: usize) {
        let excl = default_exclusion(l);
        let mut sp = StreamingProfile::new(&series[..warmup], l, excl).unwrap();
        for &v in &series[warmup..] {
            sp.append(v);
        }
        let batch = stomp(series, l, excl).unwrap();
        assert_eq!(sp.profile().len(), batch.len());
        for i in 0..batch.len() {
            assert!(
                (sp.profile().values[i] - batch.values[i]).abs() < 1e-5,
                "entry {i}: streaming {} vs batch {}",
                sp.profile().values[i],
                batch.values[i]
            );
        }
    }

    #[test]
    fn streaming_equals_batch_on_ecg() {
        let series = gen::ecg(400, &gen::EcgConfig::default(), 6);
        assert_matches_batch(&series, 24, 60);
    }

    #[test]
    fn streaming_equals_batch_on_random_walk() {
        let series = gen::random_walk(300, 16);
        assert_matches_batch(&series, 12, 40);
    }

    #[test]
    fn streaming_equals_batch_point_by_point() {
        // The profile must be exact after EVERY append, not just at the end.
        let series = gen::sine_mix(160, &[(25.0, 1.0)], 0.1, 4);
        let l = 10;
        let excl = default_exclusion(l);
        let warmup = 40;
        let mut sp = StreamingProfile::new(&series[..warmup], l, excl).unwrap();
        for end in warmup + 1..=series.len() {
            sp.append(series[end - 1]);
            let batch = stomp(&series[..end], l, excl).unwrap();
            for i in 0..batch.len() {
                assert!(
                    (sp.profile().values[i] - batch.values[i]).abs() < 1e-5,
                    "after {end} points, entry {i} differs"
                );
            }
        }
    }

    #[test]
    fn streaming_handles_flat_appends() {
        let mut series = gen::white_noise(120, 8, 1.0);
        series.extend(std::iter::repeat_n(2.5, 60)); // plateau arrives
        assert_matches_batch(&series, 12, 100);
    }

    #[test]
    fn motif_appears_when_second_instance_streams_in() {
        let pattern: Vec<f64> =
            (0..30).map(|i| (i as f64 / 30.0 * std::f64::consts::TAU).sin()).collect();
        let (series, truth) = gen::planted_pair(600, &pattern, &[100, 450], 0.01, 2);
        let l = 30;
        let excl = default_exclusion(l);
        // Bootstrap before the second instance exists.
        let mut sp = StreamingProfile::new(&series[..350], l, excl).unwrap();
        let before = sp.profile().min_entry().unwrap().2;
        for &v in &series[350..] {
            sp.append(v);
        }
        let (i, j, after) = sp.profile().min_entry().unwrap();
        assert!(after < before, "motif should improve the minimum");
        let (lo, hi) = (i.min(j), i.max(j));
        assert!(lo.abs_diff(truth.offsets[0]) <= 2);
        assert!(hi.abs_diff(truth.offsets[1]) <= 2);
    }

    #[test]
    fn rejects_bad_bootstrap() {
        assert!(StreamingProfile::new(&[1.0, 2.0], 4, 1).is_err());
        assert!(StreamingProfile::new(&[1.0, f64::NAN, 0.0, 1.0, 2.0, 3.0, 4.0], 4, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_non_finite_append() {
        let series = gen::random_walk(50, 3);
        let mut sp = StreamingProfile::new(&series, 8, 2).unwrap();
        sp.append(f64::NAN);
    }

    #[test]
    fn try_append_rejects_bad_points_without_corrupting_state() {
        let series = gen::random_walk(80, 5);
        let mut sp = StreamingProfile::new(&series[..60], 8, 2).unwrap();
        sp.append(series[60]);
        let before_profile = sp.profile().clone();
        let before_len = sp.series().len();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            match sp.try_append(bad) {
                Err(valmod_series::SeriesError::NonFinite { index }) => {
                    assert_eq!(index, before_len);
                }
                other => panic!("expected NonFinite error, got {other:?}"),
            }
            assert_eq!(sp.series().len(), before_len, "state must be untouched");
            assert_eq!(sp.profile(), &before_profile);
        }
        // The stream keeps working after rejected points.
        assert!(sp.try_append(series[61]).is_ok());
        assert_eq!(sp.series().len(), before_len + 1);
    }
}
