//! MASS — Mueen's Algorithm for Similarity Search.
//!
//! A *distance profile* is the vector of z-normalized distances between one
//! query window and every window of a series. MASS v2 computes it with a
//! single FFT-based sliding dot product plus O(1)-per-window statistics,
//! for O(n log n) total — the primitive behind STAMP and behind VALMOD's
//! recomputation fallback.

use valmod_fft::{
    naive_is_faster, sliding_dot_product_naive, sliding_dot_product_naive_into, SlidingDotPlan,
    SlidingDotScratch,
};
use valmod_series::znorm::zdist_from_dot;
use valmod_series::{Result, RollingStats};

use crate::{shifted, validate_window};

/// Reusable buffers for [`DistanceProfiler::self_profile_into`] — one per
/// thread. Holds the FFT working set plus the dot-product and profile
/// vectors, so repeated profile computations (VALMOD's recomputation
/// fallback, STAMP's row loop) allocate nothing per row.
#[derive(Debug)]
pub struct ProfileScratch {
    /// FFT working set, built on first use — profiles dispatched to the
    /// naive kernel (short windows) never pay for it.
    dots: Option<SlidingDotScratch>,
    qt: Vec<f64>,
    profile: Vec<f64>,
}

/// Reusable distance-profile engine for one series.
///
/// Construction costs one FFT of the (padded) series and one prefix-sum
/// pass; each subsequent profile costs one forward+inverse FFT.
///
/// # Example
///
/// ```
/// use valmod_mp::DistanceProfiler;
///
/// let series: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin()).collect();
/// let profiler = DistanceProfiler::new(&series).unwrap();
/// let profile = profiler.self_profile(0, 16).unwrap();
/// assert_eq!(profile.len(), 64 - 16 + 1);
/// assert!(profile[0] < 1e-6); // a window matches itself exactly
/// ```
#[derive(Debug)]
pub struct DistanceProfiler {
    values: Vec<f64>,
    plan: SlidingDotPlan,
    stats: RollingStats,
}

impl DistanceProfiler {
    /// Builds the engine (FFT plan + rolling statistics).
    ///
    /// # Errors
    ///
    /// [`valmod_series::SeriesError::TooShort`] for series shorter than the
    /// minimal window.
    pub fn new(series: &[f64]) -> Result<Self> {
        validate_window(series.len(), crate::MIN_WINDOW)?;
        let values = shifted(series);
        let plan = SlidingDotPlan::new(&values);
        let stats = RollingStats::new(&values);
        Ok(Self { values, plan, stats })
    }

    /// Length of the underlying series.
    #[must_use]
    pub fn series_len(&self) -> usize {
        self.values.len()
    }

    /// The rolling statistics of the (mean-shifted) series.
    #[must_use]
    pub fn stats(&self) -> &RollingStats {
        &self.stats
    }

    /// Allocates scratch buffers sized for this profiler, for use with
    /// [`Self::self_profile_into`]. One instance per thread.
    #[must_use]
    pub fn scratch(&self) -> ProfileScratch {
        ProfileScratch { dots: None, qt: Vec::new(), profile: Vec::new() }
    }

    /// Distance profile of the series' own subsequence `(offset, l)`
    /// against every window of length `l`.
    ///
    /// Trivial matches are **not** excluded here — entry `offset` is 0 —
    /// because different callers need different exclusion policies.
    ///
    /// Allocates per call; hot loops should hold a [`ProfileScratch`] and
    /// use [`Self::self_profile_into`], which computes exactly the same
    /// values.
    ///
    /// # Errors
    ///
    /// [`valmod_series::SeriesError::InvalidSubsequence`] when the query
    /// window does not fit, [`valmod_series::SeriesError::TooShort`] for
    /// windows below the minimum.
    pub fn self_profile(&self, offset: usize, l: usize) -> Result<Vec<f64>> {
        let mut scratch = self.scratch();
        self.self_profile_into(offset, l, &mut scratch)?;
        Ok(std::mem::take(&mut scratch.profile))
    }

    /// [`Self::self_profile`] into reusable buffers: the allocation-free
    /// variant for per-row loops. The profile is returned as a borrow of
    /// `scratch`.
    ///
    /// # Errors
    ///
    /// Same as [`Self::self_profile`].
    pub fn self_profile_into<'a>(
        &self,
        offset: usize,
        l: usize,
        scratch: &'a mut ProfileScratch,
    ) -> Result<&'a [f64]> {
        validate_window(self.values.len(), l)?;
        if offset + l > self.values.len() {
            return Err(valmod_series::SeriesError::InvalidSubsequence {
                offset,
                length: l,
                series_len: self.values.len(),
            });
        }
        let query = &self.values[offset..offset + l];
        if naive_is_faster(l, self.values.len(), 2) {
            sliding_dot_product_naive_into(query, &self.values, &mut scratch.qt);
        } else {
            let dots = scratch.dots.get_or_insert_with(|| self.plan.scratch());
            self.plan.dot_into(query, dots, &mut scratch.qt);
        }
        let mu_q = self.stats.mean(offset, l);
        let sig_q = self.stats.std(offset, l);
        self.profile_from_dots_into(&scratch.qt, l, mu_q, sig_q, &mut scratch.profile);
        Ok(&scratch.profile)
    }

    /// Distance profile of an *external* query against every window of the
    /// series (`query.len()` determines the window length).
    ///
    /// # Errors
    ///
    /// [`valmod_series::SeriesError::TooShort`] when the query is shorter
    /// than the minimal window or longer than the series.
    pub fn query_profile(&self, query: &[f64]) -> Result<Vec<f64>> {
        let l = query.len();
        if l < crate::MIN_WINDOW {
            return Err(valmod_series::SeriesError::TooShort { len: l, needed: crate::MIN_WINDOW });
        }
        if l > self.values.len() {
            return Err(valmod_series::SeriesError::TooShort { len: self.values.len(), needed: l });
        }
        // The engine's series is mean-shifted; shifting the query by any
        // constant leaves z-normalized distances unchanged, so we can use
        // the query as-is.
        let qt = if naive_is_faster(l, self.values.len(), 2) {
            sliding_dot_product_naive(query, &self.values)
        } else {
            self.plan.dot(query)
        };
        let mu_q = query.iter().sum::<f64>() / l as f64;
        let var_q = query.iter().map(|x| (x - mu_q) * (x - mu_q)).sum::<f64>() / l as f64;
        Ok(self.profile_from_dots(&qt, l, mu_q, var_q.sqrt()))
    }

    fn profile_from_dots(&self, qt: &[f64], l: usize, mu_q: f64, sig_q: f64) -> Vec<f64> {
        let mut out = Vec::new();
        self.profile_from_dots_into(qt, l, mu_q, sig_q, &mut out);
        out
    }

    fn profile_from_dots_into(
        &self,
        qt: &[f64],
        l: usize,
        mu_q: f64,
        sig_q: f64,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(qt.len());
        out.extend(qt.iter().enumerate().map(|(j, &dot)| {
            zdist_from_dot(dot, l, mu_q, sig_q, self.stats.mean(j, l), self.stats.std(j, l))
        }));
    }
}

/// Brute-force distance profile used as the correctness reference: directly
/// z-normalizes each pair of windows. O(n·ℓ).
///
/// # Errors
///
/// Same validation as [`DistanceProfiler::self_profile`].
pub fn distance_profile_brute(series: &[f64], offset: usize, l: usize) -> Result<Vec<f64>> {
    validate_window(series.len(), l)?;
    if offset + l > series.len() {
        return Err(valmod_series::SeriesError::InvalidSubsequence {
            offset,
            length: l,
            series_len: series.len(),
        });
    }
    let query = &series[offset..offset + l];
    Ok((0..=series.len() - l)
        .map(|j| valmod_series::znorm::zdist(query, &series[j..j + l]))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_series::gen;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "mismatch at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn self_profile_matches_brute_force() {
        let series = gen::random_walk(400, 11);
        let profiler = DistanceProfiler::new(&series).unwrap();
        for &(offset, l) in &[(0usize, 16usize), (100, 50), (350, 50), (0, 300)] {
            let fast = profiler.self_profile(offset, l).unwrap();
            let slow = distance_profile_brute(&series, offset, l).unwrap();
            assert_close(&fast, &slow, 1e-6);
        }
    }

    #[test]
    fn self_match_distance_is_zero() {
        let series = gen::sine_mix(300, &[(37.0, 1.0)], 0.05, 3);
        let profiler = DistanceProfiler::new(&series).unwrap();
        for offset in [0usize, 13, 250] {
            let p = profiler.self_profile(offset, 32).unwrap();
            assert!(p[offset] < 1e-6, "self-distance at {offset} is {}", p[offset]);
        }
    }

    #[test]
    fn query_profile_matches_self_profile_for_internal_query() {
        let series = gen::random_walk(500, 5);
        let profiler = DistanceProfiler::new(&series).unwrap();
        let l = 64;
        let offset = 123;
        let by_offset = profiler.self_profile(offset, l).unwrap();
        let by_query = profiler.query_profile(&series[offset..offset + l]).unwrap();
        assert_close(&by_offset, &by_query, 1e-6);
    }

    #[test]
    fn query_profile_is_shift_invariant() {
        let series = gen::random_walk(300, 9);
        let profiler = DistanceProfiler::new(&series).unwrap();
        let query: Vec<f64> = series[40..104].to_vec();
        let shifted_query: Vec<f64> = query.iter().map(|v| v + 1000.0).collect();
        let a = profiler.query_profile(&query).unwrap();
        let b = profiler.query_profile(&shifted_query).unwrap();
        assert_close(&a, &b, 1e-5);
    }

    #[test]
    fn flat_windows_follow_convention() {
        // Series with a flat plateau: windows inside the plateau are flat.
        let mut series = gen::white_noise(200, 2, 1.0);
        for v in &mut series[50..100] {
            *v = 3.0;
        }
        let profiler = DistanceProfiler::new(&series).unwrap();
        let l = 16;
        // flat query
        let p = profiler.self_profile(60, l).unwrap();
        // Flat query vs flat window -> 0; vs wavy window -> sqrt(l).
        assert!(p[70] < 1e-9);
        assert!((p[0] - (l as f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn scratch_variant_matches_allocating_profile() {
        let series = gen::random_walk(600, 21);
        let profiler = DistanceProfiler::new(&series).unwrap();
        let mut scratch = profiler.scratch();
        for &(offset, l) in &[(0usize, 16usize), (123, 64), (250, 300), (0, 450)] {
            let fast = profiler.self_profile_into(offset, l, &mut scratch).unwrap().to_vec();
            let slow = profiler.self_profile(offset, l).unwrap();
            assert_eq!(fast.len(), slow.len());
            for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "scratch path diverged at ({offset},{l}),{i}");
            }
        }
        assert!(profiler.self_profile_into(595, 16, &mut scratch).is_err());
    }

    #[test]
    fn errors_on_bad_inputs() {
        let series = gen::random_walk(100, 1);
        let profiler = DistanceProfiler::new(&series).unwrap();
        assert!(profiler.self_profile(0, 2).is_err()); // below MIN_WINDOW
        assert!(profiler.self_profile(97, 8).is_err()); // window does not fit
        assert!(profiler.query_profile(&[1.0; 200]).is_err()); // query longer than series
        assert!(DistanceProfiler::new(&[1.0, 2.0]).is_err()); // tiny series
    }

    #[test]
    fn brute_profile_validates_inputs() {
        let series = gen::random_walk(50, 1);
        assert!(distance_profile_brute(&series, 49, 4).is_err());
        assert!(distance_profile_brute(&series, 0, 3).is_err());
        assert!(distance_profile_brute(&series, 0, 4).is_ok());
    }
}
