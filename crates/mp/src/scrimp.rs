//! SCRIMP — the anytime diagonal-order matrix profile (Zhu et al., ICDM
//! 2018).
//!
//! STOMP must finish before any entry is exact; STAMP is anytime per row
//! but pays the FFT. SCRIMP walks the *diagonals* of the distance matrix
//! in random order: each diagonal is O(n) with the same O(1) dot-product
//! recurrence, every processed diagonal improves the whole profile
//! symmetrically, and stopping early yields a high-quality approximate
//! profile whose values are **upper bounds** of the exact ones (each entry
//! has simply seen fewer candidates).
//!
//! `fraction = 1.0` processes every diagonal and equals STOMP exactly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use valmod_series::znorm::{dist_from_pearson, zdist_from_dot};
use valmod_series::Result;

use crate::profile::MatrixProfile;
use crate::stomp::StompEngine;

/// Anytime matrix profile: processes `ceil(fraction × #diagonals)`
/// diagonals, chosen uniformly at random with the given seed.
///
/// # Errors
///
/// [`valmod_series::SeriesError::TooShort`] via window validation.
///
/// # Panics
///
/// Panics if `fraction` is not within `(0, 1]`.
pub fn scrimp(
    series: &[f64],
    l: usize,
    exclusion: usize,
    fraction: f64,
    seed: u64,
) -> Result<MatrixProfile> {
    assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1], got {fraction}");
    let engine = StompEngine::new(series, l)?;
    let m = engine.num_windows();
    let mut mp = MatrixProfile::unfilled(l, exclusion, m);
    if exclusion + 1 >= m {
        return Ok(mp);
    }

    // Candidate diagonals k: pairs (i, i+k) with k beyond the exclusion.
    let mut diagonals: Vec<usize> = (exclusion + 1..m).collect();
    if fraction < 1.0 {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5c81_3b97_aa11_22ff);
        // Partial Fisher-Yates: draw the required prefix.
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let keep = ((diagonals.len() as f64 * fraction).ceil() as usize).max(1);
        for idx in 0..keep {
            let swap = idx + rng.gen_range(0..diagonals.len() - idx);
            diagonals.swap(idx, swap);
        }
        diagonals.truncate(keep);
    }

    let t = engine.values();
    let lf = l as f64;
    let flat = engine.has_flat_windows();
    let means = engine.means();
    let stds = engine.stds();

    for &k in &diagonals {
        let mut qt = 0.0;
        for i in 0..m - k {
            let j = i + k;
            qt = if i == 0 {
                (0..l).map(|s| t[s] * t[k + s]).sum()
            } else {
                t[i + l - 1].mul_add(t[j + l - 1], qt - t[i - 1] * t[j - 1])
            };
            let d = if flat {
                zdist_from_dot(qt, l, means[i], stds[i], means[j], stds[j])
            } else {
                let rho =
                    ((qt - lf * means[i] * means[j]) / (lf * stds[i] * stds[j])).clamp(-1.0, 1.0);
                dist_from_pearson(rho, l)
            };
            mp.offer(i, d, j);
            mp.offer(j, d, i);
        }
    }
    Ok(mp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_exclusion;
    use crate::stomp::stomp;
    use valmod_series::gen;

    #[test]
    fn full_fraction_equals_stomp() {
        let series = gen::ecg(300, &gen::EcgConfig::default(), 3);
        let l = 24;
        let excl = default_exclusion(l);
        let exact = stomp(&series, l, excl).unwrap();
        let full = scrimp(&series, l, excl, 1.0, 0).unwrap();
        for i in 0..exact.len() {
            assert!(
                (exact.values[i] - full.values[i]).abs() < 1e-7,
                "mismatch at {i}: {} vs {}",
                exact.values[i],
                full.values[i]
            );
        }
    }

    #[test]
    fn partial_fraction_upper_bounds_the_exact_profile() {
        let series = gen::random_walk(400, 9);
        let l = 16;
        let excl = default_exclusion(l);
        let exact = stomp(&series, l, excl).unwrap();
        for fraction in [0.1, 0.3, 0.7] {
            let approx = scrimp(&series, l, excl, fraction, 42).unwrap();
            for i in 0..exact.len() {
                assert!(
                    approx.values[i] >= exact.values[i] - 1e-9,
                    "anytime profile must never undershoot: {} < {} at {i}",
                    approx.values[i],
                    exact.values[i]
                );
            }
        }
    }

    #[test]
    fn quality_improves_with_fraction() {
        let series = gen::astro(500, &gen::AstroConfig::default(), 17);
        let l = 32;
        let excl = default_exclusion(l);
        let exact = stomp(&series, l, excl).unwrap();
        let err = |fraction: f64| -> f64 {
            let approx = scrimp(&series, l, excl, fraction, 7).unwrap();
            approx
                .values
                .iter()
                .zip(&exact.values)
                .map(|(a, e)| if a.is_finite() { a - e } else { 2.0 * (l as f64).sqrt() })
                .sum::<f64>()
        };
        let coarse = err(0.05);
        let fine = err(0.5);
        assert!(fine <= coarse, "error should shrink with more diagonals: {fine} vs {coarse}");
    }

    #[test]
    fn motif_is_often_found_early() {
        // The classic anytime claim: even a small fraction of diagonals
        // usually finds the motif. With a strongly planted pair this must
        // hold for a decent share of seeds.
        let pattern: Vec<f64> =
            (0..40).map(|i| (i as f64 / 40.0 * std::f64::consts::TAU).sin()).collect();
        let (series, truth) = gen::planted_pair(1200, &pattern, &[150, 800], 0.01, 5);
        let l = 40;
        let excl = default_exclusion(l);
        let mut hits = 0;
        for seed in 0..10 {
            let approx = scrimp(&series, l, excl, 0.3, seed).unwrap();
            if let Some((i, j, _)) = approx.min_entry() {
                let (lo, hi) = (i.min(j), i.max(j));
                if lo.abs_diff(truth.offsets[0]) <= 2 && hi.abs_diff(truth.offsets[1]) <= 2 {
                    hits += 1;
                }
            }
        }
        // The planted diagonal is 1 of ~1100; 30% sampling finds it with
        // p ≈ 0.3 per run. Requiring ≥1 of 10 keeps the test stable.
        assert!(hits >= 1, "motif never found at 30% effort across 10 seeds");
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn rejects_bad_fraction() {
        let series = gen::random_walk(100, 1);
        let _ = scrimp(&series, 8, 2, 0.0, 0);
    }
}
