//! The Matrix Profile container.

use valmod_series::znorm;

/// A fixed-length Matrix Profile: for each subsequence offset, the distance
/// to (and offset of) its nearest non-trivial neighbor.
///
/// Entries whose subsequence has no admissible neighbor (possible only in
/// degenerate inputs) carry `f64::INFINITY` and index `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixProfile {
    /// Subsequence (window) length `ℓ`.
    pub window: usize,
    /// Trivial-match exclusion zone that was applied (in offsets).
    pub exclusion: usize,
    /// `values[i]` — z-normalized distance from subsequence `i` to its
    /// nearest neighbor.
    pub values: Vec<f64>,
    /// `indices[i]` — offset of that nearest neighbor.
    pub indices: Vec<Option<usize>>,
}

impl MatrixProfile {
    /// Creates an "empty" profile of `len` entries, all at infinity — the
    /// starting state of every engine.
    #[must_use]
    pub fn unfilled(window: usize, exclusion: usize, len: usize) -> Self {
        Self { window, exclusion, values: vec![f64::INFINITY; len], indices: vec![None; len] }
    }

    /// Number of profile entries (`series length − ℓ + 1`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the profile has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Records a candidate neighbor, keeping the closer of the existing and
    /// the new one.
    #[inline]
    pub fn offer(&mut self, i: usize, dist: f64, j: usize) {
        if dist < self.values[i] {
            self.values[i] = dist;
            self.indices[i] = Some(j);
        }
    }

    /// The profile minimum: `(offset, best-match offset, distance)` — the
    /// motif pair of this length. `None` if every entry is infinite.
    #[must_use]
    pub fn min_entry(&self) -> Option<(usize, usize, f64)> {
        let (i, &d) = self
            .values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("profile distances are never NaN"))?;
        let j = self.indices[i]?;
        d.is_finite().then_some((i, j, d))
    }

    /// The profile maximum over finite entries — the top discord (the
    /// subsequence farthest from everything else).
    #[must_use]
    pub fn max_entry(&self) -> Option<(usize, usize, f64)> {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_finite())
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("profile distances are never NaN"))
            .and_then(|(i, &d)| self.indices[i].map(|j| (i, j, d)))
    }

    /// The same profile with every distance divided by `√ℓ` — the paper's
    /// length-normalized form, the building block of VALMAP.
    #[must_use]
    pub fn length_normalized_values(&self) -> Vec<f64> {
        self.values.iter().map(|&d| znorm::length_normalized(d, self.window)).collect()
    }

    /// Asserts the structural invariants (equal lengths, non-NaN, finite
    /// entries have indices). Used by tests and debug assertions.
    ///
    /// # Panics
    ///
    /// Panics when an invariant is violated.
    pub fn check_invariants(&self) {
        assert_eq!(self.values.len(), self.indices.len());
        for (i, (&d, &idx)) in self.values.iter().zip(&self.indices).enumerate() {
            assert!(!d.is_nan(), "NaN distance at {i}");
            if d.is_finite() {
                let j = idx.unwrap_or_else(|| panic!("finite entry {i} lacks an index"));
                assert!(j < self.values.len(), "index out of range at {i}");
                let gap = i.abs_diff(j);
                assert!(gap > self.exclusion, "trivial match recorded at {i} (j={j})");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::MatrixProfile;

    #[test]
    fn unfilled_profile_is_all_infinite() {
        let mp = MatrixProfile::unfilled(8, 2, 5);
        assert_eq!(mp.len(), 5);
        assert!(!mp.is_empty());
        assert!(mp.values.iter().all(|d| d.is_infinite()));
        assert!(mp.min_entry().is_none());
        assert!(mp.max_entry().is_none());
    }

    #[test]
    fn offer_keeps_the_minimum() {
        let mut mp = MatrixProfile::unfilled(8, 2, 4);
        mp.offer(1, 5.0, 3);
        mp.offer(1, 7.0, 0); // worse: ignored
        mp.offer(1, 2.0, 3); // better: kept
        assert_eq!(mp.values[1], 2.0);
        assert_eq!(mp.indices[1], Some(3));
    }

    #[test]
    fn min_and_max_entries() {
        let mut mp = MatrixProfile::unfilled(8, 1, 4);
        mp.offer(0, 3.0, 2);
        mp.offer(1, 1.0, 3);
        mp.offer(2, 9.0, 0);
        assert_eq!(mp.min_entry(), Some((1, 3, 1.0)));
        assert_eq!(mp.max_entry(), Some((2, 0, 9.0)));
    }

    #[test]
    fn length_normalized_divides_by_sqrt_window() {
        let mut mp = MatrixProfile::unfilled(16, 4, 2);
        mp.offer(0, 8.0, 1);
        let normed = mp.length_normalized_values();
        assert!((normed[0] - 2.0).abs() < 1e-12);
        assert!(normed[1].is_infinite());
    }

    #[test]
    #[should_panic(expected = "trivial match")]
    fn invariant_check_catches_trivial_matches() {
        let mut mp = MatrixProfile::unfilled(8, 2, 6);
        mp.offer(3, 1.0, 4); // gap 1 <= exclusion 2
        mp.check_invariants();
    }
}
