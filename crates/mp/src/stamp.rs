//! STAMP (Matrix Profile I): one MASS distance profile per subsequence.
//!
//! STAMP costs O(n² log n) — asymptotically worse than STOMP — but its rows
//! are independent, which historically made it the *anytime* engine: rows
//! can be evaluated in any order and the profile converges monotonically.
//! We keep it as a correctness cross-check, as the second fixed-length
//! baseline, and to power partial/anytime computations.

use valmod_series::Result;

use crate::mass::DistanceProfiler;
use crate::profile::MatrixProfile;
use crate::validate_window;

/// Exact fixed-length Matrix Profile via STAMP.
///
/// # Errors
///
/// [`valmod_series::SeriesError::TooShort`] via [`validate_window`].
pub fn stamp(series: &[f64], l: usize, exclusion: usize) -> Result<MatrixProfile> {
    let order: Vec<usize> = (0..series.len().saturating_sub(l) + 1).collect();
    stamp_ordered(series, l, exclusion, &order)
}

/// STAMP restricted to (or reordered over) a chosen set of rows — the
/// anytime form. Rows not listed keep infinite profile entries, but listed
/// rows still see *all* candidate neighbors, so their entries are exact.
///
/// # Errors
///
/// [`valmod_series::SeriesError::TooShort`] via [`validate_window`].
pub fn stamp_ordered(
    series: &[f64],
    l: usize,
    exclusion: usize,
    rows: &[usize],
) -> Result<MatrixProfile> {
    validate_window(series.len(), l)?;
    let profiler = DistanceProfiler::new(series)?;
    let m = series.len() - l + 1;
    let mut mp = MatrixProfile::unfilled(l, exclusion, m);
    for &i in rows {
        if i >= m {
            continue;
        }
        let profile = profiler.self_profile(i, l)?;
        for (j, &d) in profile.iter().enumerate() {
            if i.abs_diff(j) > exclusion {
                mp.offer(i, d, j);
                // The self-join is symmetric: credit the neighbor too. This
                // is what makes partial STAMP converge quickly.
                mp.offer(j, d, i);
            }
        }
    }
    Ok(mp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_exclusion;
    use crate::stomp::stomp;
    use valmod_series::gen;

    #[test]
    fn stamp_matches_stomp() {
        let series = gen::ecg(350, &gen::EcgConfig::default(), 8);
        for &l in &[8usize, 24] {
            let excl = default_exclusion(l);
            let a = stamp(&series, l, excl).unwrap();
            let b = stomp(&series, l, excl).unwrap();
            assert_eq!(a.len(), b.len());
            for i in 0..a.len() {
                assert!(
                    (a.values[i] - b.values[i]).abs() < 1e-6,
                    "mismatch at {i}: {} vs {}",
                    a.values[i],
                    b.values[i]
                );
            }
        }
    }

    #[test]
    fn partial_stamp_entries_are_exact_for_computed_rows() {
        let series = gen::random_walk(260, 14);
        let l = 20;
        let excl = default_exclusion(l);
        let full = stamp(&series, l, excl).unwrap();
        let partial = stamp_ordered(&series, l, excl, &[0, 50, 100]).unwrap();
        for &i in &[0usize, 50, 100] {
            assert!((partial.values[i] - full.values[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn out_of_range_rows_are_ignored() {
        let series = gen::random_walk(100, 3);
        let mp = stamp_ordered(&series, 10, 2, &[0, 5000]).unwrap();
        assert_eq!(mp.len(), 91);
    }

    #[test]
    fn anytime_order_converges_to_full_profile() {
        let series = gen::sine_mix(200, &[(25.0, 1.0)], 0.1, 6);
        let l = 12;
        let excl = default_exclusion(l);
        let full = stamp(&series, l, excl).unwrap();
        // A random-ish permutation covering all rows must give the same result.
        let m = series.len() - l + 1;
        let rows: Vec<usize> = (0..m).map(|i| (i * 97) % m).collect();
        let permuted = stamp_ordered(&series, l, excl, &rows).unwrap();
        for i in 0..m {
            assert!((full.values[i] - permuted.values[i]).abs() < 1e-9);
        }
    }
}
