//! Motif-pair and discord extraction from a Matrix Profile.

use crate::profile::MatrixProfile;

/// A motif pair: the two subsequence offsets and their z-normalized
/// distance, at a fixed length.
///
/// By the paper's convention the *right* member (`b`) is the best match of
/// the *left* one (`a`), and we store `a < b` for a canonical form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotifPair {
    /// Offset of the left (earlier) subsequence.
    pub a: usize,
    /// Offset of the right (later) subsequence.
    pub b: usize,
    /// Z-normalized Euclidean distance between the two subsequences.
    pub distance: f64,
    /// Subsequence length.
    pub length: usize,
}

impl MotifPair {
    /// Canonicalizes offsets so that `a < b`.
    #[must_use]
    pub fn new(i: usize, j: usize, distance: f64, length: usize) -> Self {
        let (a, b) = if i <= j { (i, j) } else { (j, i) };
        Self { a, b, distance, length }
    }

    /// Whether this pair overlaps another pair's occurrences within the
    /// given exclusion half-width (used to deduplicate near-identical
    /// pairs when ranking).
    #[must_use]
    pub fn overlaps(&self, other: &Self, exclusion: usize) -> bool {
        let close = |x: usize, y: usize| x.abs_diff(y) <= exclusion;
        (close(self.a, other.a) && close(self.b, other.b))
            || (close(self.a, other.b) && close(self.b, other.a))
    }
}

/// Extracts the top-k motif pairs of a fixed-length profile.
///
/// Pairs are reported in ascending distance order. A candidate whose
/// occurrences both fall within the profile's exclusion zone of an already
/// selected pair is skipped, so the k pairs describe k genuinely different
/// co-occurrences rather than k shifted copies of the same one.
#[must_use]
pub fn top_k_pairs(mp: &MatrixProfile, k: usize) -> Vec<MotifPair> {
    if k == 0 {
        return Vec::new();
    }
    let mut candidates: Vec<MotifPair> = mp
        .values
        .iter()
        .zip(&mp.indices)
        .enumerate()
        .filter_map(|(i, (&d, &idx))| {
            let j = idx?;
            d.is_finite().then(|| MotifPair::new(i, j, d, mp.window))
        })
        .collect();
    candidates.sort_by(|x, y| {
        x.distance
            .partial_cmp(&y.distance)
            .expect("profile distances are never NaN")
            .then(x.a.cmp(&y.a))
            .then(x.b.cmp(&y.b))
    });

    let mut selected: Vec<MotifPair> = Vec::with_capacity(k);
    for cand in candidates {
        if selected.len() == k {
            break;
        }
        if selected.iter().any(|s| cand.overlaps(s, mp.exclusion)) {
            continue;
        }
        selected.push(cand);
    }
    selected
}

/// Extracts the top-k discords (subsequences farthest from their nearest
/// neighbor), in descending distance order, skipping offsets within the
/// exclusion zone of an already selected discord.
#[must_use]
pub fn top_k_discords(mp: &MatrixProfile, k: usize) -> Vec<(usize, f64)> {
    let mut order: Vec<(usize, f64)> =
        mp.values.iter().enumerate().filter(|(_, d)| d.is_finite()).map(|(i, &d)| (i, d)).collect();
    order.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));
    let mut selected: Vec<(usize, f64)> = Vec::with_capacity(k);
    for (i, d) in order {
        if selected.len() == k {
            break;
        }
        if selected.iter().any(|&(s, _)| s.abs_diff(i) <= mp.exclusion) {
            continue;
        }
        selected.push((i, d));
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_exclusion;
    use crate::stomp::stomp;
    use valmod_series::gen;

    fn profile_with(entries: &[(usize, f64, usize)], window: usize, excl: usize) -> MatrixProfile {
        let len = entries.len();
        let mut mp = MatrixProfile::unfilled(window, excl, len.max(8));
        for &(i, d, j) in entries {
            mp.values[i] = d;
            mp.indices[i] = Some(j);
        }
        mp
    }

    #[test]
    fn pair_is_canonicalized() {
        let p = MotifPair::new(9, 2, 1.0, 8);
        assert_eq!((p.a, p.b), (2, 9));
    }

    #[test]
    fn overlap_detection_is_symmetric_in_members() {
        let p = MotifPair::new(10, 50, 1.0, 8);
        let same = MotifPair::new(51, 11, 1.1, 8);
        let crossed = MotifPair::new(49, 9, 1.2, 8);
        let distinct = MotifPair::new(100, 200, 0.9, 8);
        assert!(p.overlaps(&same, 2));
        assert!(p.overlaps(&crossed, 2));
        assert!(!p.overlaps(&distinct, 2));
    }

    #[test]
    fn top_k_orders_by_distance_and_dedupes() {
        // Entries 0 and 1 describe the same pair (shifted by one).
        let mp = profile_with(&[(0, 1.0, 5), (1, 1.05, 6), (3, 2.0, 7), (7, 0.5, 3)], 8, 1);
        let pairs = top_k_pairs(&mp, 3);
        // (3,7,0.5) first; then (0,5,1.0); (1,6,1.05) is a shifted duplicate
        // of (0,5); (3,7,2.0) duplicates the first.
        assert_eq!(pairs.len(), 2);
        assert_eq!((pairs[0].a, pairs[0].b), (3, 7));
        assert_eq!((pairs[1].a, pairs[1].b), (0, 5));
    }

    #[test]
    fn top_k_respects_k_and_handles_empty() {
        let mp = MatrixProfile::unfilled(8, 1, 10);
        assert!(top_k_pairs(&mp, 5).is_empty());
        let mp = profile_with(&[(0, 1.0, 5)], 8, 1);
        assert_eq!(top_k_pairs(&mp, 0).len(), 0);
        assert_eq!(top_k_pairs(&mp, 10).len(), 1);
    }

    #[test]
    fn discords_are_farthest_first_and_spread_out() {
        let mp = profile_with(&[(0, 5.0, 3), (1, 4.9, 4), (4, 1.0, 0), (6, 3.0, 2)], 8, 1);
        let discords = top_k_discords(&mp, 2);
        assert_eq!(discords[0].0, 0);
        // Offset 1 is within the exclusion zone of 0, so 6 comes next.
        assert_eq!(discords[1].0, 6);
    }

    #[test]
    fn end_to_end_motifs_on_planted_series() {
        let pattern: Vec<f64> =
            (0..40).map(|i| (i as f64 / 40.0 * std::f64::consts::TAU).sin()).collect();
        let (series, truth) = gen::planted_pair(1500, &pattern, &[200, 900], 0.02, 31);
        let mp = stomp(&series, 40, default_exclusion(40)).unwrap();
        let pairs = top_k_pairs(&mp, 3);
        assert!(!pairs.is_empty());
        let top = pairs[0];
        assert!(top.a.abs_diff(truth.offsets[0]) <= 2);
        assert!(top.b.abs_diff(truth.offsets[1]) <= 2);
        // Later pairs are strictly farther.
        for w in pairs.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }
}
